"""Causal tracing: trace contexts on the wire, spans off the wire.

Two halves, matching how distributed tracing systems split the problem:

- :class:`TraceContext` is the *on-the-wire* half: a trace id plus span
  parentage, carried as an optional field on
  :class:`~repro.omni.messages.Envelope`. The server stamps outgoing
  envelopes with a child context of whatever context the message being
  handled carried, so a proposal's causal chain — AcceptDecide fan-out,
  Accepted replies, the Decide — shares one trace id across servers, in
  both the simulator and the asyncio runtime (the pickle codec ships the
  field transparently).
- :class:`Span` is the *off-the-wire* half: the analysis functions here
  stitch an exported event stream (see :mod:`repro.obs.events`) into
  end-to-end spans — commit path, client round-trip, election
  convergence, crash/session recovery, and per-donor migration segments
  — which feed per-phase latency histograms and the ``repro-obs
  timeline`` Gantt reconstruction.

Span assembly is deliberately post-hoc: protocols emit cheap point
events (guarded by ``MetricsRegistry.tracing``) and never build span
objects on the hot path, preserving the zero-overhead-when-disabled
guarantee of the observability layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.compat import SLOTTED
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    BallotBumped,
    BallotElected,
    ClientProposalSent,
    ClientReplyDecided,
    EntryApplied,
    EventRecord,
    MigrationCompleted,
    MigrationDonorPicked,
    MigrationSegmentReceived,
    ProposalAppended,
    QCFlagChanged,
    QuorumAccepted,
    RecoveryCompleted,
    RecoveryStarted,
)

#: Span kinds produced by :func:`assemble_spans` — identical across all
#: four protocols, which is what makes sim/runtime and cross-protocol
#: span sets directly comparable.
SPAN_COMMIT = "commit"
SPAN_CLIENT = "client"
SPAN_ELECTION = "election"
SPAN_RECOVERY = "recovery"
SPAN_MIGRATION = "migration"
SPAN_MIGRATION_SEGMENT = "migration_segment"

SPAN_KINDS = (
    SPAN_COMMIT,
    SPAN_CLIENT,
    SPAN_ELECTION,
    SPAN_RECOVERY,
    SPAN_MIGRATION,
    SPAN_MIGRATION_SEGMENT,
)


@dataclass(frozen=True, **SLOTTED)
class TraceContext:
    """Trace identity carried on an :class:`~repro.omni.messages.Envelope`.

    ``trace_id`` names the causal chain (for client commands:
    ``c<client_id>-<seq>``); ``span_id`` names this hop and ``parent_id``
    the hop that caused it. Contexts are immutable — derive hops with
    :meth:`child`.
    """

    trace_id: str
    span_id: str = ""
    parent_id: str = ""

    def child(self, span_id: str) -> "TraceContext":
        """A context for work caused by this one (same trace, new hop)."""
        return TraceContext(self.trace_id, span_id=span_id,
                            parent_id=self.span_id)

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "TraceContext":
        return cls(
            trace_id=payload.get("trace_id", ""),
            span_id=payload.get("span_id", ""),
            parent_id=payload.get("parent_id", ""),
        )

    #: Approximate serialized cost of carrying a context on the wire
    #: (two short ids plus the trace id; used by ``Envelope.wire_size``).
    WIRE_SIZE = 24


def entry_trace_id(entry: Any) -> str:
    """The canonical trace id for a client command, or ``""``.

    Client commands carry ``client_id``/``seq``; the id ``c<cid>-<seq>``
    lets the client-side events and the replication-side events of the
    same command meet in one trace without any extra wire state.
    """
    client_id = getattr(entry, "client_id", None)
    seq = getattr(entry, "seq", None)
    if client_id is None or seq is None:
        return ""
    return f"c{client_id}-{seq}"


@dataclass(frozen=True, **SLOTTED)
class Span:
    """One reconstructed end-to-end interval of protocol work.

    ``phases`` are ordered ``(name, at_ms)`` milestones inside the span;
    consecutive milestones define the per-phase durations (see
    :meth:`phase_durations`). ``attrs`` carries kind-specific context
    (leader pid, entry range, donor, ...).
    """

    kind: str
    trace_id: str
    start_ms: float
    end_ms: float
    pid: int = 0
    phases: Tuple[Tuple[str, float], ...] = ()
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def phase_durations(self) -> List[Tuple[str, float]]:
        """``(phase_name, duration_ms)`` between consecutive milestones.

        A milestone marks the *start* of its phase; the phase ends at the
        next milestone (the last phase ends at ``end_ms``).
        """
        out: List[Tuple[str, float]] = []
        for i, (name, at) in enumerate(self.phases):
            nxt = self.phases[i + 1][1] if i + 1 < len(self.phases) else self.end_ms
            out.append((name, nxt - at))
        return out

    def attr(self, name: str, default: Any = None) -> Any:
        for key, value in self.attrs:
            if key == name:
                return value
        return default


# --------------------------------------------------------------------------
# span assembly from event streams
# --------------------------------------------------------------------------

def commit_spans(events: Sequence[EventRecord]) -> List[Span]:
    """Commit-path spans: one per leader replication batch.

    propose/append (``ProposalAppended``) → majority accept
    (``QuorumAccepted`` with ``log_idx`` covering the batch) → apply
    (``EntryApplied`` at the leader covering the batch). Batches of one
    entry give exact per-entry spans; larger batches are accounted once.
    Batches whose quorum never arrives (leader fail-over, partition) are
    skipped — they never committed in that round.
    """
    quorums: Dict[int, List[Tuple[float, int]]] = {}
    applies: Dict[int, List[Tuple[float, int]]] = {}
    for record in events:
        ev = record.event
        if isinstance(ev, QuorumAccepted):
            quorums.setdefault(ev.pid, []).append((record.at_ms, ev.log_idx))
        elif isinstance(ev, EntryApplied):
            applies.setdefault(ev.pid, []).append((record.at_ms, ev.log_idx))
    spans: List[Span] = []
    for record in events:
        ev = record.event
        if not isinstance(ev, ProposalAppended):
            continue
        quorum_at = _first_covering(quorums.get(ev.pid, ()),
                                    record.at_ms, ev.to_idx)
        if quorum_at is None:
            continue
        apply_at = _first_covering(applies.get(ev.pid, ()),
                                   quorum_at, ev.to_idx)
        end = apply_at if apply_at is not None else quorum_at
        phases: List[Tuple[str, float]] = [("replicate", record.at_ms)]
        if apply_at is not None:
            phases.append(("apply", quorum_at))
        spans.append(Span(
            kind=SPAN_COMMIT,
            trace_id=ev.trace_id,
            start_ms=record.at_ms,
            end_ms=end,
            pid=ev.pid,
            phases=tuple(phases),
            attrs=(("from_idx", ev.from_idx), ("to_idx", ev.to_idx),
                   ("protocol", ev.protocol),
                   ("entries", ev.to_idx - ev.from_idx)),
        ))
    return spans


def _first_covering(series: Sequence[Tuple[float, int]], not_before: float,
                    idx: int) -> Optional[float]:
    """Earliest timestamp in ``series`` at/after ``not_before`` whose
    log index reaches ``idx`` (series is in emission order)."""
    for at, log_idx in series:
        if at >= not_before and log_idx >= idx:
            return at
    return None


def client_spans(events: Sequence[EventRecord]) -> List[Span]:
    """Client round-trip spans: proposal sent → reply decided, per seq."""
    sent: Dict[Tuple[int, int], float] = {}
    spans: List[Span] = []
    for record in events:
        ev = record.event
        if isinstance(ev, ClientProposalSent):
            for seq in range(ev.first_seq, ev.first_seq + ev.count):
                sent.setdefault((ev.client_id, seq), record.at_ms)
        elif isinstance(ev, ClientReplyDecided):
            start = sent.pop((ev.client_id, ev.seq), None)
            if start is None:
                continue
            spans.append(Span(
                kind=SPAN_CLIENT,
                trace_id=f"c{ev.client_id}-{ev.seq}",
                start_ms=start,
                end_ms=record.at_ms,
                pid=ev.client_id,
                attrs=(("seq", ev.seq),),
            ))
    return spans


def election_spans(events: Sequence[EventRecord],
                   settle_ms: float = 500.0) -> List[Span]:
    """Election-convergence spans, by sessionizing the election signal.

    Election activity (``BallotBumped``, ``QCFlagChanged`` to
    not-quorum-connected, ``BallotElected``) arrives in bursts separated
    by steady-state quiet; gaps longer than ``settle_ms`` split episodes.
    An episode's span runs from its first trigger to its *last*
    ``BallotElected`` — the point where the final leader was observed.
    ``converged`` is False when servers disagreed on the final leader or
    no election completed at all (e.g. the quorum-loss partition window,
    where only the pivot stays quorum-connected and nobody is elected).
    """
    episode: List[EventRecord] = []
    spans: List[Span] = []

    def flush() -> None:
        if not episode:
            return
        electeds = [r for r in episode if isinstance(r.event, BallotElected)]
        if electeds:
            last_by_pid: Dict[int, int] = {}
            for r in electeds:
                last_by_pid[r.event.pid] = r.event.leader
            leaders = set(last_by_pid.values())
            final = electeds[-1].event.leader
            spans.append(Span(
                kind=SPAN_ELECTION,
                trace_id=f"election-{episode[0].at_ms:.0f}",
                start_ms=episode[0].at_ms,
                end_ms=electeds[-1].at_ms,
                pid=final,
                attrs=(("leader", final), ("converged", len(leaders) == 1),
                       ("observers", len(last_by_pid))),
            ))
        else:
            spans.append(Span(
                kind=SPAN_ELECTION,
                trace_id=f"election-{episode[0].at_ms:.0f}",
                start_ms=episode[0].at_ms,
                end_ms=episode[-1].at_ms,
                pid=0,
                attrs=(("leader", None), ("converged", False),
                       ("observers", 0)),
            ))
        episode.clear()

    for record in events:
        ev = record.event
        relevant = (
            isinstance(ev, (BallotBumped, BallotElected))
            or (isinstance(ev, QCFlagChanged) and not ev.quorum_connected)
        )
        if not relevant:
            continue
        if episode and record.at_ms - episode[-1].at_ms > settle_ms:
            flush()
        episode.append(record)
    flush()
    return spans


def recovery_spans(events: Sequence[EventRecord]) -> List[Span]:
    """Crash/session recovery spans: PrepareReq out → AcceptSync applied."""
    open_by_pid: Dict[int, Tuple[float, str]] = {}
    spans: List[Span] = []
    for record in events:
        ev = record.event
        if isinstance(ev, RecoveryStarted):
            open_by_pid.setdefault(ev.pid, (record.at_ms, ev.reason))
        elif isinstance(ev, RecoveryCompleted):
            started = open_by_pid.pop(ev.pid, None)
            if started is None:
                continue
            start_ms, reason = started
            spans.append(Span(
                kind=SPAN_RECOVERY,
                trace_id=f"recovery-{ev.pid}-{start_ms:.0f}",
                start_ms=start_ms,
                end_ms=record.at_ms,
                pid=ev.pid,
                attrs=(("reason", reason), ("log_idx", ev.log_idx)),
            ))
    return spans


def migration_spans(events: Sequence[EventRecord]) -> List[Span]:
    """Whole-migration spans plus per-donor segment spans.

    The whole span runs from the first donor pick to
    ``MigrationCompleted``; each ``(joiner, donor)`` pair additionally
    gets a segment span from its pull request to the last segment that
    donor delivered — the per-donor breakdown that distinguishes the
    parallel strategy from leader-only migration (paper Figure 6).
    """
    first_pick: Dict[Tuple[int, int], float] = {}
    donor_start: Dict[Tuple[int, int, int], float] = {}
    donor_last: Dict[Tuple[int, int, int], Tuple[float, int]] = {}
    spans: List[Span] = []
    for record in events:
        ev = record.event
        if isinstance(ev, MigrationDonorPicked):
            first_pick.setdefault((ev.pid, ev.config_id), record.at_ms)
            donor_start.setdefault((ev.pid, ev.config_id, ev.donor),
                                   record.at_ms)
        elif isinstance(ev, MigrationSegmentReceived):
            key = (ev.pid, ev.config_id, ev.donor)
            prev = donor_last.get(key, (record.at_ms, 0))
            donor_last[key] = (record.at_ms, prev[1] + ev.entries)
        elif isinstance(ev, MigrationCompleted):
            start = first_pick.pop((ev.pid, ev.config_id), None)
            if start is None:
                continue
            spans.append(Span(
                kind=SPAN_MIGRATION,
                trace_id=f"migration-{ev.pid}-cfg{ev.config_id}",
                start_ms=start,
                end_ms=record.at_ms,
                pid=ev.pid,
                attrs=(("config_id", ev.config_id),
                       ("entries", ev.entries)),
            ))
    for (pid, config_id, donor), start in donor_start.items():
        last = donor_last.get((pid, config_id, donor))
        if last is None:
            continue
        end, entries = last
        spans.append(Span(
            kind=SPAN_MIGRATION_SEGMENT,
            trace_id=f"migration-{pid}-cfg{config_id}-d{donor}",
            start_ms=start,
            end_ms=end,
            pid=pid,
            attrs=(("config_id", config_id), ("donor", donor),
                   ("entries", entries)),
        ))
    return spans


def assemble_spans(events: Sequence[EventRecord],
                   settle_ms: float = 500.0) -> List[Span]:
    """Every span kind from one event stream, sorted by start time."""
    spans = (
        commit_spans(events)
        + client_spans(events)
        + election_spans(events, settle_ms=settle_ms)
        + recovery_spans(events)
        + migration_spans(events)
    )
    spans.sort(key=lambda s: (s.start_ms, s.kind))
    return spans


def observe_span_histograms(spans: Sequence[Span], registry: Any) -> None:
    """Feed span (and commit-phase) durations into registry histograms.

    Populates ``repro_span_duration_ms{kind=...}`` for every span and
    ``repro_commit_phase_ms{phase=...}`` for commit-span phases, making
    post-hoc span analysis exportable through the same Prometheus /
    snapshot machinery as live metrics.
    """
    for span in spans:
        registry.histogram("repro_span_duration_ms",
                           kind=span.kind).observe(span.duration_ms)
        if span.kind == SPAN_COMMIT:
            for phase, duration in span.phase_durations():
                registry.histogram("repro_commit_phase_ms",
                                   phase=phase).observe(duration)


def span_quantile(spans: Sequence[Span], q: float) -> Optional[Span]:
    """The span at the ``q``-quantile of duration (None when empty)."""
    if not spans:
        return None
    ordered = sorted(spans, key=lambda s: s.duration_ms)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]
