"""The ``repro-obs watch`` dashboard: the health observatory as ASCII.

Renders a :class:`~repro.obs.health.HealthMonitor` snapshot — the N×N
believed-connectivity matrix, a leader/ballot lane per server, replication
lag bars, and the gray-failure verdicts — as a fixed-width text panel.
Three entry points share the renderer:

- :func:`render_dashboard` — one frame from a monitor (plus optional
  ground truth, which marks matrix cells that *disagree* with the actual
  link state with ``!`` and prints the disagreement count),
- :func:`watch_export` — replay an exported ``.jsonl`` file into a
  monitor and render the state as of ``--at-ms`` (post-mortem mode),
- :func:`watch_demo` — run a short partitioned simulation live and render
  before/during/after frames with ground truth, which is both the worked
  example in the docs and the CI smoke (the during-partition frame must
  show disagreements while stale views lag the netsplit).
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.events import EventRecord
from repro.obs.health import (
    GroundTruth,
    HealthMonitor,
    ground_truth_from_network,
    matrix_disagreements,
)
from repro.obs.registry import MetricsRegistry

#: Matrix cell glyphs: believed up / believed down / never reported.
GLYPH_UP = "#"
GLYPH_DOWN = "."
GLYPH_UNKNOWN = "?"
GLYPH_SELF = "\\"
#: Appended to a cell whose belief contradicts ground truth.
GLYPH_DISAGREE = "!"

LAG_BAR_WIDTH = 20


def _matrix_lines(monitor: HealthMonitor,
                  truth: Optional[GroundTruth],
                  now_ms: Optional[float]) -> List[str]:
    matrix = monitor.matrix
    pids = matrix.pids()
    if truth is not None:
        pids = tuple(sorted(set(pids) | {p for pair in truth for p in pair}))
    if not pids:
        return ["  (no heartbeat views reported yet)"]
    lines = ["  connectivity matrix (rows report, cols are peers; "
             f"{GLYPH_UP} up  {GLYPH_DOWN} down  {GLYPH_UNKNOWN} unknown"
             + (f"  {GLYPH_DISAGREE} disagrees with ground truth" if truth
                is not None else "") + ")"]
    header = "       " + " ".join(f"{b:>3d}" for b in pids)
    lines.append(header)
    for a in pids:
        cells = []
        for b in pids:
            if a == b:
                cells.append(f"  {GLYPH_SELF} ")
                continue
            believed = matrix.believes_up(a, b)
            glyph = (GLYPH_UNKNOWN if believed is None
                     else GLYPH_UP if believed else GLYPH_DOWN)
            mark = " "
            if truth is not None and (a, b) in truth:
                stale = now_ms is not None and matrix.is_stale(a, now_ms)
                if not stale and (believed is None
                                  or believed != truth[(a, b)]):
                    mark = GLYPH_DISAGREE
            cells.append(f"  {glyph}{mark}")
        fresh = ""
        if now_ms is not None:
            age = matrix.freshness_ms(a, now_ms)
            if age is not None:
                fresh = f"   fresh {age:.0f}ms" + (
                    " (stale)" if matrix.is_stale(a, now_ms) else "")
        lines.append(f"  {a:>3d} " + "".join(cells) + fresh)
    return lines


def _server_lines(monitor: HealthMonitor) -> List[str]:
    views = monitor.matrix.views
    if not views:
        return []
    lines = ["  servers:"]
    max_decided = max(v.decided_idx for v in views.values())
    for pid, view in sorted(views.items()):
        lag = max_decided - view.decided_idx
        filled = LAG_BAR_WIDTH if max_decided == 0 else round(
            LAG_BAR_WIDTH * view.decided_idx / max_decided)
        bar = GLYPH_UP * filled + GLYPH_DOWN * (LAG_BAR_WIDTH - filled)
        lines.append(
            f"  {pid:>3d} {view.phase:<9s} leader={view.leader} "
            f"ballot={view.ballot} qc={'+' if view.quorum_connected else '-'} "
            f"round={view.round} "
            f"decided [{bar}] {view.decided_idx}"
            + (f" (lag {lag})" if lag else "")
        )
    return lines


def _degraded_lines(monitor: HealthMonitor) -> List[str]:
    pairs = monitor.degraded_pairs()
    if not pairs:
        return ["  degraded peers: none"]
    lines = ["  degraded peers:"]
    for observer, peer, state in pairs:
        lines.append(
            f"    {observer} sees {peer} degraded "
            f"({state.reason}, score {state.score:g})"
        )
    return lines


def render_dashboard(
    monitor: HealthMonitor,
    truth: Optional[GroundTruth] = None,
    now_ms: Optional[float] = None,
    title: str = "cluster health",
) -> str:
    """One dashboard frame from ``monitor``'s current snapshot."""
    at = now_ms if now_ms is not None else monitor.last_at_ms
    lines = [f"== {title} @ t={at:.0f}ms =="]
    lines.extend(_matrix_lines(monitor, truth, now_ms))
    lines.extend(_server_lines(monitor))
    lines.extend(_degraded_lines(monitor))
    if truth is not None:
        disputes = matrix_disagreements(monitor.matrix, truth, now_ms)
        lines.append(f"  disagreements={len(disputes)}")
    return "\n".join(lines)


def watch_export(
    records: Sequence[EventRecord],
    at_ms: Optional[float] = None,
    stale_after_ms: Optional[float] = None,
) -> str:
    """Replay exported events and render the dashboard as of ``at_ms``
    (default: the last event)."""
    monitor = HealthMonitor(stale_after_ms=stale_after_ms)
    replayed = 0
    for record in records:
        if at_ms is not None and record.at_ms > at_ms:
            break
        monitor.record(record)
        replayed += 1
    if not monitor.matrix.views:
        raise ConfigError(
            "no HeartbeatViewReported events in the export — was the run "
            "captured with an enabled registry and this repo's health layer?"
        )
    frame = render_dashboard(monitor, now_ms=at_ms)
    lanes = _series_lines(records, at_ms=at_ms)
    if lanes:
        frame += "\n" + "\n".join(lanes)
    return frame


#: Sparkline columns in the watch frame (last N windows, newest right).
_SERIES_COLUMNS = 32


def _series_lines(records: Sequence[EventRecord],
                  at_ms: Optional[float] = None,
                  window_ms: Optional[float] = None) -> List[str]:
    """Sparkline lanes of the recent windowed series (throughput, commit
    p95, queue backlog) under the health matrix — the "how is it trending"
    half of the dashboard. Empty when the export holds too little history
    for even one window."""
    from repro.obs.series import series_from_events, series_lanes
    scoped = [r for r in records if at_ms is None or r.at_ms <= at_ms]
    if not scoped:
        return []
    span = max(r.at_ms for r in scoped) - min(r.at_ms for r in scoped)
    if window_ms is None:
        # Aim for a full sparkline width across the visible history.
        window_ms = max(span / _SERIES_COLUMNS, 1.0)
    if span < window_ms:
        return []
    windows = series_from_events(scoped, window_ms)[-_SERIES_COLUMNS:]
    if not windows:
        return []
    lines = [f"  series ({window_ms:.0f} ms windows):"]
    lines.extend("  " + lane for lane in series_lanes(windows))
    return lines


#: Scenario name -> the paper partition it demonstrates.
DEMO_SCENARIOS = ("quorum-loss", "constrained", "chained")


def watch_demo(
    scenario: str = "quorum-loss",
    num_servers: int = 5,
    election_timeout_ms: float = 100.0,
    seed: int = 0,
    out: Optional[io.TextIOBase] = None,
) -> int:
    """Run a short partitioned sim and print before/during/after frames.

    Returns the number of matrix/ground-truth disagreements observed in
    the *during-partition* frame taken immediately after the netsplit —
    the believed matrix still claims the pre-partition links, so a healthy
    health layer shows a non-zero count here (the CI smoke asserts it) and
    zero again once heartbeat rounds quiesce.
    """
    from repro.sim import partitions
    from repro.sim.harness import ExperimentConfig, build_experiment

    if scenario not in DEMO_SCENARIOS:
        raise ConfigError(
            f"unknown scenario {scenario!r}; pick one of {DEMO_SCENARIOS}"
        )
    registry = MetricsRegistry()
    monitor = HealthMonitor(stale_after_ms=20 * election_timeout_ms)
    registry.add_sink(monitor)
    exp = build_experiment(ExperimentConfig(
        protocol="omni",
        num_servers=num_servers,
        election_timeout_ms=election_timeout_ms,
        seed=seed,
        initial_leader=1,
    ), obs=registry)
    cluster = exp.cluster
    pids = list(cluster.pids)

    def emit(frame: str) -> None:
        if out is not None:
            out.write(frame + "\n\n")

    settle_ms = 20 * election_timeout_ms
    cluster.run_for(settle_ms)
    truth = ground_truth_from_network(exp.network, pids)
    emit(render_dashboard(monitor, truth, cluster.now,
                          title=f"{scenario}: before partition"))

    pivot = pids[-1]
    if scenario == "quorum-loss":
        partitions.quorum_loss(cluster, pivot=pivot)
    elif scenario == "constrained":
        partitions.constrained_election(cluster, pivot=pivot, leader=1)
    else:
        partitions.chained(cluster, order=pids)
    # One tick of sim time: the netsplit is live but no heartbeat round
    # has closed, so beliefs still describe the healed network.
    cluster.run_for(exp.config.effective_tick_ms)
    truth = ground_truth_from_network(exp.network, pids)
    during = render_dashboard(monitor, truth, cluster.now,
                              title=f"{scenario}: just after partition")
    emit(during)
    disagreements = len(
        matrix_disagreements(monitor.matrix, truth, cluster.now))

    cluster.run_for(settle_ms)
    truth = ground_truth_from_network(exp.network, pids)
    emit(render_dashboard(monitor, truth, cluster.now,
                          title=f"{scenario}: partition quiesced"))

    partitions.heal(cluster)
    cluster.run_for(settle_ms)
    truth = ground_truth_from_network(exp.network, pids)
    emit(render_dashboard(monitor, truth, cluster.now,
                          title=f"{scenario}: healed"))
    if out is not None:
        out.write(f"partition-disagreements={disagreements}\n")
    return disagreements
