"""Turn an exported event stream back into the paper's summary numbers.

The benchmarks historically recomputed decided-throughput, per-5s-window
series, down-time and per-server IO by hand from harness-local trackers.
This module derives the same numbers from the *exported* observability
stream instead, so any run that produced a JSON-lines file — sim harness,
live runtime, benchmark — can be summarized after the fact:

- throughput and the per-window decided series come from
  :class:`~repro.obs.events.ClientReplyDecided` events, fed through the
  very same :class:`~repro.sim.metrics.DecidedTracker` the harness uses
  (hence bit-identical numbers),
- down-time / recovery follow the paper's Figure 8 definitions,
- per-server IO and election/migration tallies come from the metrics
  snapshot appended to the export.

``python -m repro.tools.obs_report run.jsonl`` renders the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.events import ClientReplyDecided, EventRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.metrics import DecidedTracker


@dataclass
class RunReport:
    """Summary of one exported run."""

    start_ms: float
    end_ms: float
    decided_total: int
    throughput_ops_s: float
    downtime_ms: float
    #: ``(window_start_ms, decided_count)`` per window — Figure 9's series.
    windows: List[Tuple[float, int]] = field(default_factory=list)
    window_ms: float = 5000.0
    #: Event-kind tallies (elections, role changes, session drops, ...).
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Outgoing bytes per server, from the metrics snapshot.
    io_bytes_by_server: Dict[str, float] = field(default_factory=dict)
    #: Decided entries per server, from the metrics snapshot.
    decided_by_server: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """A human-readable report (what the CLI prints)."""
        lines = [
            f"observation window : {self.start_ms:.1f} .. {self.end_ms:.1f} ms"
            f"  ({(self.end_ms - self.start_ms) / 1000.0:.1f} s)",
            f"decided replies    : {self.decided_total}",
            f"throughput         : {self.throughput_ops_s:.1f} decided/s",
            f"down-time (longest): {self.downtime_ms:.1f} ms",
        ]
        if self.windows:
            lines.append(f"per-{self.window_ms / 1000.0:.0f}s-window decided:")
            for start, count in self.windows:
                rate = count / (self.window_ms / 1000.0)
                lines.append(f"  [{start:10.1f} ms] {count:8d}  ({rate:9.1f}/s)")
        if self.event_counts:
            lines.append("events:")
            for kind in sorted(self.event_counts):
                lines.append(f"  {kind:<22s} {self.event_counts[kind]:8d}")
        if self.io_bytes_by_server:
            lines.append("outgoing IO per server:")
            for pid in sorted(self.io_bytes_by_server, key=str):
                mb = self.io_bytes_by_server[pid] / 1e6
                lines.append(f"  server {pid:<4} {mb:10.3f} MB")
        if self.decided_by_server:
            lines.append("decided entries per server:")
            for pid in sorted(self.decided_by_server, key=str):
                lines.append(
                    f"  server {pid:<4} {int(self.decided_by_server[pid]):10d}"
                )
        return "\n".join(lines)


def decided_tracker_from_events(
    events: Sequence[EventRecord],
) -> DecidedTracker:
    """Rebuild the harness's :class:`DecidedTracker` from the exported
    client-reply events (timestamps must already be non-decreasing, which
    registry stamping guarantees)."""
    # Imported here, not at module scope: the protocol modules import
    # repro.obs, and repro.sim transitively imports them back.
    from repro.sim.metrics import DecidedTracker

    tracker = DecidedTracker()
    for record in events:
        if isinstance(record.event, ClientReplyDecided):
            tracker.record(record.at_ms)
    return tracker


def summarize_run(
    events: Sequence[EventRecord],
    metrics: Sequence[Dict[str, Any]] = (),
    window_ms: float = 5000.0,
    start_ms: Optional[float] = None,
    end_ms: Optional[float] = None,
) -> RunReport:
    """Compute the standard summary over ``[start_ms, end_ms)``.

    ``start_ms``/``end_ms`` default to the first/last event timestamps —
    pass explicit bounds to reproduce a harness measurement window (e.g.
    a partition interval for down-time).
    """
    if start_ms is None:
        start_ms = events[0].at_ms if events else 0.0
    if end_ms is None:
        end_ms = events[-1].at_ms if events else 0.0
    if start_ms > end_ms:
        raise ConfigError(
            f"observation window inverted: start {start_ms} > end {end_ms}"
        )
    tracker = decided_tracker_from_events(events)
    counts: Dict[str, int] = {}
    for record in events:
        counts[record.event.kind] = counts.get(record.event.kind, 0) + 1
    io: Dict[str, float] = {}
    decided_by_server: Dict[str, float] = {}
    for metric in metrics:
        name = metric.get("name")
        labels = metric.get("labels", {})
        if name == "repro_bytes_sent_total":
            io[str(labels.get("src"))] = metric.get("value", 0.0)
        elif name == "repro_decided_entries_total":
            decided_by_server[str(labels.get("pid"))] = metric.get("value", 0.0)
    return RunReport(
        start_ms=start_ms,
        end_ms=end_ms,
        decided_total=tracker.count_between(start_ms, end_ms),
        throughput_ops_s=tracker.throughput(start_ms, end_ms),
        downtime_ms=tracker.downtime(start_ms, end_ms),
        windows=tracker.windowed_counts(start_ms, end_ms, window_ms),
        window_ms=window_ms,
        event_counts=counts,
        io_bytes_by_server=io,
        decided_by_server=decided_by_server,
    )
