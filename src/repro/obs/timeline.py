"""ASCII timeline and span-Gantt reconstruction from exported runs.

Given the JSON-lines export of any run (sim harness, live runtime,
benchmark), :func:`render_timeline` draws the scenario the way the paper
narrates it — who led when, which servers lost quorum-connectivity, where
client throughput stopped — and :func:`render_spans` draws the
reconstructed spans (see :mod:`repro.obs.spans`) as Gantt bars::

    timeline 0.0 .. 9000.0 ms  (60 cols, 150.0 ms/col)
    leader   |   3333333333333333333333333333333333333333333333333333333|
    qc s1    |###########################################################|
    qc s3    |############----------------------#########################|
    decided  |.#########################        .########################|
    downtime |                          xxxxxxxxx                        |

Down-time is *the* paper metric (Figure 8), so the window is computed
with the harness's own :class:`~repro.sim.metrics.DecidedTracker` (via
:func:`~repro.obs.report.decided_tracker_from_events`) — the rendered gap
is bit-identical to what the benchmarks report.

Everything here is pure string building over parsed events; nothing
touches live protocol state. Output is plain ASCII so it survives any
terminal, pipe, or CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    BallotElected,
    ClientReplyDecided,
    EventRecord,
    NemesisInjected,
    QCFlagChanged,
    QueueDepthSampled,
)
from repro.obs.report import decided_tracker_from_events
from repro.obs.spans import SPAN_COMMIT, SPAN_KINDS, Span, span_quantile

#: Decided-throughput density ramp (events per column -> glyph).
_DENSITY = " .:+#"


class _Scale:
    """Maps timestamps onto a fixed-width column grid."""

    def __init__(self, start_ms: float, end_ms: float, width: int):
        self.start_ms = start_ms
        # Degenerate ranges (single-instant exports) still get one column.
        self.end_ms = end_ms if end_ms > start_ms else start_ms + 1.0
        self.width = max(width, 10)
        self.ms_per_col = (self.end_ms - self.start_ms) / self.width

    def col(self, at_ms: float) -> int:
        c = int((at_ms - self.start_ms) / self.ms_per_col)
        return min(max(c, 0), self.width - 1)

    def header(self) -> str:
        return (f"timeline {self.start_ms:.1f} .. {self.end_ms:.1f} ms"
                f"  ({self.width} cols, {self.ms_per_col:.1f} ms/col)")


def _step_lane(scale: _Scale, changes: Sequence[Tuple[float, str]],
               initial: str = " ") -> str:
    """A lane whose glyph is the last change at/before each column start."""
    cells = [initial] * scale.width
    idx = 0
    current = initial
    for c in range(scale.width):
        col_end = scale.start_ms + (c + 1) * scale.ms_per_col
        while idx < len(changes) and changes[idx][0] < col_end:
            current = changes[idx][1]
            idx += 1
        cells[c] = current
    return "".join(cells)


def _density_lane(scale: _Scale, times: Sequence[float]) -> str:
    counts = [0] * scale.width
    for t in times:
        if scale.start_ms <= t <= scale.end_ms:
            counts[scale.col(t)] += 1
    peak = max(counts) if any(counts) else 0
    if peak == 0:
        return " " * scale.width
    ramp = len(_DENSITY) - 1
    return "".join(
        _DENSITY[0 if n == 0 else max(1, round(n / peak * ramp))]
        for n in counts
    )


def _interval_lane(scale: _Scale, start_ms: float, end_ms: float,
                   glyph: str = "x") -> str:
    cells = [" "] * scale.width
    lo = scale.col(start_ms)
    hi = scale.col(end_ms)
    for c in range(lo, hi + 1):
        cells[c] = glyph
    return "".join(cells)


def _lane(label: str, cells: str) -> str:
    return f"{label:<9s}|{cells}|"


def render_timeline(
    events: Sequence[EventRecord],
    width: int = 60,
    start_ms: Optional[float] = None,
    end_ms: Optional[float] = None,
    spans: Sequence[Span] = (),
) -> str:
    """The scenario timeline: leader tenure, QC flags, decided density,
    and the longest down-time window.

    ``spans`` (from :func:`~repro.obs.spans.assemble_spans`) is optional;
    when given, a span-count summary and the critical path of the p99
    commit span are appended — the "why was the tail slow" answer.
    """
    if not events:
        return "(no events)"
    if start_ms is None:
        start_ms = events[0].at_ms
    if end_ms is None:
        end_ms = events[-1].at_ms
    scale = _Scale(start_ms, end_ms, width)
    lines = [scale.header()]

    # Leader lane: the latest BallotElected observation wins; the glyph is
    # the leader's pid (mod 10), so tenure changes read directly off the row.
    elections = [
        (r.at_ms, str(r.event.leader % 10))
        for r in events if isinstance(r.event, BallotElected)
    ]
    lines.append(_lane("leader", _step_lane(scale, elections)))

    # One QC lane per server that ever flipped (servers start connected).
    qc_changes: Dict[int, List[Tuple[float, str]]] = {}
    for r in events:
        if isinstance(r.event, QCFlagChanged):
            glyph = "#" if r.event.quorum_connected else "-"
            qc_changes.setdefault(r.event.pid, []).append((r.at_ms, glyph))
    for pid in sorted(qc_changes):
        lines.append(_lane(f"qc s{pid}",
                           _step_lane(scale, qc_changes[pid], initial="#")))

    # Nemesis lane (chaos runs): '!' where a fault op was applied, '^'
    # where one was reverted — the cause markers the other lanes react to.
    nemesis = [r for r in events if isinstance(r.event, NemesisInjected)]
    if nemesis:
        cells = [" "] * scale.width
        for r in nemesis:
            cells[scale.col(r.at_ms)] = (
                "!" if r.event.phase == "apply" else "^"
            )
        lines.append(_lane("nemesis", "".join(cells)))

    # Backlog lane (profiled runs): per-column peak queue depth across all
    # sampled staging queues, peak-normalized — reads as "where was the
    # backpressure" against the cause markers above it.
    depth_samples = [r for r in events
                     if isinstance(r.event, QueueDepthSampled)]
    if depth_samples:
        peaks = [0] * scale.width
        worst = (0, None)
        for r in depth_samples:
            if scale.start_ms <= r.at_ms <= scale.end_ms:
                col = scale.col(r.at_ms)
                if r.event.depth > peaks[col]:
                    peaks[col] = r.event.depth
                if r.event.depth > worst[0]:
                    worst = (r.event.depth, r)
        peak = max(peaks)
        ramp = len(_DENSITY) - 1
        cells = "".join(
            _DENSITY[0 if n == 0 else max(1, round(n / peak * ramp))]
            for n in peaks
        ) if peak else " " * scale.width
        lines.append(_lane("backlog", cells))
        if worst[1] is not None:
            ev = worst[1].event
            where = f" s{ev.pid}" if ev.pid is not None else ""
            lines.append(
                f"peak backlog: {ev.depth} ({ev.queue}{where}"
                f" @ {worst[1].at_ms:.1f} ms)"
            )

    # Decided-reply density and the harness-identical down-time window.
    decided = [r.at_ms for r in events
               if isinstance(r.event, ClientReplyDecided)]
    lines.append(_lane("decided", _density_lane(scale, decided)))
    tracker = decided_tracker_from_events(events)
    gap_start, gap_end = tracker.downtime_window(scale.start_ms, scale.end_ms)
    lines.append(_lane("downtime", _interval_lane(scale, gap_start, gap_end)))
    lines.append(
        f"longest down-time: {gap_end - gap_start:.1f} ms"
        f"  [{gap_start:.1f} .. {gap_end:.1f}]"
    )

    if spans:
        counts = {kind: 0 for kind in SPAN_KINDS}
        for span in spans:
            counts[span.kind] = counts.get(span.kind, 0) + 1
        summary = ", ".join(f"{n} {kind}" for kind, n in counts.items() if n)
        lines.append(f"spans: {summary}")
        commits = [s for s in spans if s.kind == SPAN_COMMIT]
        p99 = span_quantile(commits, 0.99)
        if p99 is not None:
            lines.append(
                f"p99 commit ({p99.duration_ms:.2f} ms, trace"
                f" {p99.trace_id or '?'}, leader s{p99.pid},"
                f" entries [{p99.attr('from_idx')}..{p99.attr('to_idx')})):"
            )
            for phase, duration in p99.phase_durations():
                lines.append(f"  {phase:<10s} {duration:8.2f} ms")
    return "\n".join(lines)


def render_spans(
    spans: Sequence[Span],
    width: int = 60,
    limit: int = 30,
    kinds: Optional[Sequence[str]] = None,
) -> str:
    """Gantt bars for reconstructed spans, grouped by kind.

    Each kind gets a duration summary (count, p50, p99) plus up to
    ``limit`` chronological bars; a note says how many were elided, so a
    truncated view never reads as a complete one.
    """
    if kinds is not None:
        spans = [s for s in spans if s.kind in kinds]
    if not spans:
        return "(no spans)"
    start_ms = min(s.start_ms for s in spans)
    end_ms = max(s.end_ms for s in spans)
    scale = _Scale(start_ms, end_ms, width)
    lines = [scale.header().replace("timeline", "spans", 1)]
    by_kind: Dict[str, List[Span]] = {}
    for span in spans:
        by_kind.setdefault(span.kind, []).append(span)
    order = [k for k in SPAN_KINDS if k in by_kind]
    order += [k for k in sorted(by_kind) if k not in order]
    for kind in order:
        group = by_kind[kind]
        p50 = span_quantile(group, 0.50)
        p99 = span_quantile(group, 0.99)
        lines.append(
            f"{kind} ({len(group)} spans, p50 {p50.duration_ms:.2f} ms,"
            f" p99 {p99.duration_ms:.2f} ms)"
        )
        for span in group[:limit]:
            cells = [" "] * scale.width
            lo = scale.col(span.start_ms)
            hi = scale.col(span.end_ms)
            for c in range(lo, hi + 1):
                cells[c] = "="
            # Phase milestones interrupt the bar so hand-offs are visible.
            for _name, at in span.phases[1:]:
                cells[scale.col(at)] = "+"
            label = span.trace_id or f"s{span.pid}"
            lines.append(f"  |{''.join(cells)}| {span.duration_ms:8.2f} ms"
                         f"  {label}")
        if len(group) > limit:
            lines.append(f"  ... {len(group) - limit} more elided")
    return "\n".join(lines)
