"""Omni-Paxos: the paper's primary contribution.

This package implements the three decoupled components described in the
paper:

- :mod:`repro.omni.ble` — Ballot Leader Election (paper section 5), which
  elects a *quorum-connected* server using heartbeat rounds that carry
  ``(ballot, quorum_connected)`` pairs.
- :mod:`repro.omni.sequence_paxos` — Sequence Paxos log replication (paper
  section 4) with a Prepare-phase log synchronization so that even a trailing
  leader can take over safely.
- :mod:`repro.omni.server` / :mod:`repro.omni.reconfig` — the service layer
  and reconfiguration with stop-signs and parallel log migration (paper
  section 6).

All protocol classes are *sans-io*: they consume messages and clock ticks and
emit outgoing messages into an outbox. The simulator
(:mod:`repro.sim`) and the asyncio runtime (:mod:`repro.runtime`) both drive
the very same objects.
"""

from repro.omni.ballot import Ballot, BOTTOM
from repro.omni.entry import Command, StopSign, is_stopsign
from repro.omni.storage import InMemoryStorage, FileStorage, Storage
from repro.omni.ble import BallotLeaderElection, BLEConfig
from repro.omni.sequence_paxos import SequencePaxos, SequencePaxosConfig, Role, Phase
from repro.omni.server import OmniPaxosServer, OmniPaxosConfig, ClusterConfig

__all__ = [
    "Ballot",
    "BOTTOM",
    "Command",
    "StopSign",
    "is_stopsign",
    "Storage",
    "InMemoryStorage",
    "FileStorage",
    "BallotLeaderElection",
    "BLEConfig",
    "SequencePaxos",
    "SequencePaxosConfig",
    "Role",
    "Phase",
    "OmniPaxosServer",
    "OmniPaxosConfig",
    "ClusterConfig",
]
