"""Fault-injecting storage wrapper for failure testing.

:class:`FaultyStorage` wraps any :class:`~repro.omni.storage.Storage` and
fails writes on demand (disk-full, flaky media). Sequence Paxos does not
swallow storage failures — a replica that cannot persist must crash rather
than acknowledge unpersisted state, which is what the fail-recovery model
(paper section 3) assumes. The failure-injection tests assert exactly that:
errors propagate, and after the fault clears the replica recovers through
the normal fail-recovery path with no safety loss.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.omni.ballot import Ballot
from repro.omni.storage import Storage


class FaultyStorage(Storage):
    """A storage decorator whose writes can be made to fail.

    ``fail_after`` arms a countdown: that many more writes succeed, then
    every write raises :class:`StorageError` until :meth:`heal` is called.
    Reads always succeed (the medium is readable; appends are not).
    """

    def __init__(self, inner: Storage):
        self._inner = inner
        self._writes_until_failure: Optional[int] = None
        self._failing = False
        self.writes_attempted = 0
        self.writes_failed = 0

    # -- fault control ------------------------------------------------------

    def fail_after(self, writes: int) -> None:
        """Let ``writes`` more writes succeed, then fail all writes."""
        self._writes_until_failure = writes
        self._failing = writes <= 0

    def heal(self) -> None:
        """Stop failing writes."""
        self._writes_until_failure = None
        self._failing = False

    @property
    def failing(self) -> bool:
        return self._failing

    def _write_gate(self) -> None:
        self.writes_attempted += 1
        if self._writes_until_failure is not None and not self._failing:
            self._writes_until_failure -= 1
            if self._writes_until_failure < 0:
                self._failing = True
        if self._failing:
            self.writes_failed += 1
            raise StorageError("injected storage fault (disk full)")

    # -- Storage API (writes gated, reads passed through) --------------------

    def append_entry(self, entry: Any) -> int:
        self._write_gate()
        return self._inner.append_entry(entry)

    def append_entries(self, entries: Sequence[Any]) -> int:
        self._write_gate()
        return self._inner.append_entries(entries)

    def truncate_suffix(self, from_idx: int) -> None:
        self._write_gate()
        self._inner.truncate_suffix(from_idx)

    def get_entries(self, from_idx: int, to_idx: int) -> Tuple[Any, ...]:
        return self._inner.get_entries(from_idx, to_idx)

    def log_len(self) -> int:
        return self._inner.log_len()

    def compact_prefix(self, idx: int) -> None:
        self._write_gate()
        self._inner.compact_prefix(idx)

    def compacted_idx(self) -> int:
        return self._inner.compacted_idx()

    def set_snapshot(self, state: Any, covers_idx: int) -> None:
        self._write_gate()
        self._inner.set_snapshot(state, covers_idx)

    def get_snapshot(self) -> Optional[Tuple[Any, int]]:
        return self._inner.get_snapshot()

    def _reset_log_to(self, logical_len: int) -> None:
        self._inner._reset_log_to(logical_len)

    def set_promise(self, ballot: Ballot) -> None:
        self._write_gate()
        self._inner.set_promise(ballot)

    def get_promise(self) -> Ballot:
        return self._inner.get_promise()

    def set_accepted_round(self, ballot: Ballot) -> None:
        self._write_gate()
        self._inner.set_accepted_round(ballot)

    def get_accepted_round(self) -> Ballot:
        return self._inner.get_accepted_round()

    def set_decided_idx(self, idx: int) -> None:
        self._write_gate()
        self._inner.set_decided_idx(idx)

    def get_decided_idx(self) -> int:
        return self._inner.get_decided_idx()
