"""Fault-injecting storage wrapper for failure testing.

:class:`FaultyStorage` wraps any :class:`~repro.omni.storage.Storage` and
fails writes on demand (disk-full, flaky media). Sequence Paxos does not
swallow storage failures — a replica that cannot persist must crash rather
than acknowledge unpersisted state, which is what the fail-recovery model
(paper section 3) assumes. The failure-injection tests assert exactly that:
errors propagate, and after the fault clears the replica recovers through
the normal fail-recovery path with no safety loss.

The ``torn`` mode additionally persists a prefix of a batched append before
failing — the on-disk state a power cut leaves mid-batch — to assert that
recovery treats the torn suffix as never written (un-acked entries may be
lost; acked ones may not).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.omni.ballot import Ballot
from repro.omni.storage import Storage


class FaultyStorage(Storage):
    """A storage decorator whose writes can be made to fail — or limp.

    ``fail_after`` arms a countdown: that many more writes succeed, then
    every write raises :class:`StorageError` until :meth:`heal` is called.
    Reads always succeed (the medium is readable; appends are not).

    ``slow_writes`` is the *fail-slow* mode (``slow_disk`` chaos fault):
    writes keep succeeding but each one reports a service-time stall
    through :attr:`on_write_stall` — the hook a driver (the sim cluster)
    uses to charge the owning server's event loop for the blocked fsync.
    A slow disk is deliberately not an error: the server stays alive and
    heartbeat-reachable, which is exactly the gray failure that fail-stop
    detectors miss.
    """

    #: Supported failure modes: ``"fail"`` rejects the whole write;
    #: ``"torn"`` additionally persists a *prefix* of the batch on the
    #: triggering ``append_entries`` (a power cut mid-batch).
    MODES = ("fail", "torn")

    def __init__(self, inner: Storage):
        self._inner = inner
        self._writes_until_failure: Optional[int] = None
        self._failing = False
        self._mode = "fail"
        self._just_tripped = False
        #: Fail-slow: per-write service time (ms); 0.0 = healthy disk.
        self._slow_ms = 0.0
        #: Called with the stall (ms) for every write while slow mode is
        #: armed; wired by the driver that owns the clock.
        self.on_write_stall: Optional[Callable[[float], None]] = None
        self.writes_attempted = 0
        self.writes_failed = 0
        self.writes_slowed = 0
        self.entries_torn = 0

    # -- fault control ------------------------------------------------------

    def fail_after(self, writes: int, mode: str = "fail") -> None:
        """Let ``writes`` more writes succeed, then fail all writes.

        With ``mode="torn"`` the write that trips the countdown persists a
        prefix of its batch (if it is a multi-entry ``append_entries``)
        before raising — the classic torn write a crashed disk leaves
        behind. Every later write fails cleanly until :meth:`heal`.
        """
        if mode not in self.MODES:
            raise ValueError(f"unknown fault mode {mode!r}; pick {self.MODES}")
        self._mode = mode
        self._writes_until_failure = writes
        # The trip happens inside the (writes+1)-th write attempt, so the
        # ``failing`` flag flips there — that write is the one that tears.
        self._failing = False

    def slow_writes(self, per_write_ms: float) -> None:
        """Arm (or, with ``0``, disarm) the fail-slow disk.

        Every write from now on succeeds but stalls ``per_write_ms`` —
        reported through :attr:`on_write_stall` so the owning server's
        timer loop runs late. Independent of :meth:`fail_after`; both can
        be armed at once (a disk can be slow *and* about to die).
        """
        if per_write_ms < 0:
            raise ValueError("per_write_ms must be non-negative")
        self._slow_ms = per_write_ms

    def heal(self) -> None:
        """Stop failing writes and restore full disk speed."""
        self._writes_until_failure = None
        self._failing = False
        self._mode = "fail"
        self._slow_ms = 0.0

    @property
    def failing(self) -> bool:
        return self._failing

    @property
    def slow_ms(self) -> float:
        """Current per-write stall (ms); 0.0 when the disk is healthy."""
        return self._slow_ms

    def _advance_gate(self) -> bool:
        """Advance the countdown; True when this write must fail.

        Flags ``_just_tripped`` on the write that trips the countdown —
        that is the (only) write the torn mode tears.
        """
        self.writes_attempted += 1
        if self._slow_ms > 0.0:
            self.writes_slowed += 1
            if self.on_write_stall is not None:
                self.on_write_stall(self._slow_ms)
        self._just_tripped = False
        if self._writes_until_failure is not None and not self._failing:
            self._writes_until_failure -= 1
            if self._writes_until_failure < 0:
                self._failing = True
                self._just_tripped = True
        if self._failing:
            self.writes_failed += 1
            return True
        return False

    def _write_gate(self) -> None:
        if self._advance_gate():
            raise StorageError("injected storage fault (disk full)")

    # -- Storage API (writes gated, reads passed through) --------------------

    def append_entry(self, entry: Any) -> int:
        self._write_gate()
        return self._inner.append_entry(entry)

    def append_entries(self, entries: Sequence[Any]) -> int:
        if self._advance_gate():
            if self._mode == "torn" and self._just_tripped and len(entries) > 1:
                torn = len(entries) // 2
                self.entries_torn += torn
                self._inner.append_entries(entries[:torn])
                raise StorageError(
                    f"injected torn write ({torn}/{len(entries)} entries "
                    f"persisted)"
                )
            raise StorageError("injected storage fault (disk full)")
        return self._inner.append_entries(entries)

    def truncate_suffix(self, from_idx: int) -> None:
        self._write_gate()
        self._inner.truncate_suffix(from_idx)

    def get_entries(self, from_idx: int, to_idx: int) -> Tuple[Any, ...]:
        return self._inner.get_entries(from_idx, to_idx)

    def log_len(self) -> int:
        return self._inner.log_len()

    def compact_prefix(self, idx: int) -> None:
        self._write_gate()
        self._inner.compact_prefix(idx)

    def compacted_idx(self) -> int:
        return self._inner.compacted_idx()

    def set_snapshot(self, state: Any, covers_idx: int) -> None:
        self._write_gate()
        self._inner.set_snapshot(state, covers_idx)

    def get_snapshot(self) -> Optional[Tuple[Any, int]]:
        return self._inner.get_snapshot()

    def _reset_log_to(self, logical_len: int) -> None:
        self._inner._reset_log_to(logical_len)

    def set_promise(self, ballot: Ballot) -> None:
        self._write_gate()
        self._inner.set_promise(ballot)

    def get_promise(self) -> Ballot:
        return self._inner.get_promise()

    def set_accepted_round(self, ballot: Ballot) -> None:
        self._write_gate()
        self._inner.set_accepted_round(ballot)

    def get_accepted_round(self) -> Ballot:
        return self._inner.get_accepted_round()

    def set_decided_idx(self, idx: int) -> None:
        self._write_gate()
        self._inner.set_decided_idx(idx)

    def get_decided_idx(self) -> int:
        return self._inner.get_decided_idx()
