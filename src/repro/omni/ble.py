"""Ballot Leader Election (BLE) — paper section 5.2, Figure 4.

BLE elects a *quorum-connected* (QC) server: one that is correct and has a
direct link to a majority of servers (including itself). Servers exchange
heartbeats in rounds; every heartbeat reply carries the sender's current
ballot and its quorum-connected flag. A server that received replies from a
majority in a round may run ``check_leader``:

- If the highest quorum-connected ballot seen is *lower* than the current
  leader's ballot, the leader is either unreachable or no longer QC, so this
  server bumps its own ballot past the leader's and attempts to take over.
- If it is *higher*, that ballot's owner becomes the new leader and a leader
  event is handed to Sequence Paxos.

Servers that are not quorum-connected never run ``check_leader`` and thus
never churn ballots — the key to surviving the quorum-loss and chained
scenarios of paper section 2.

The implementation is sans-io: callers feed in messages and clock ticks and
drain the outbox and leader events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.events import BallotBumped, BallotElected, QCFlagChanged
from repro.obs.health import SelfDegradationMonitor
from repro.obs.registry import Instrumented, MetricsRegistry
from repro.omni.ballot import Ballot, BOTTOM
from repro.omni.messages import HeartbeatReply, HeartbeatRequest


@dataclass(frozen=True)
class BLEConfig:
    """Static configuration of one BLE instance.

    ``hb_period_ms`` is the heartbeat-round length (the election timeout of
    the evaluation). ``priority`` is the optional custom ballot field for
    leader preference (paper section 5.2). ``use_qc_flag=False`` disables the
    quorum-connected flag in heartbeats — only for the ablation benchmark
    that demonstrates why the flag is necessary.
    """

    pid: int
    peers: Tuple[int, ...]
    hb_period_ms: float = 100.0
    priority: int = 0
    use_qc_flag: bool = True
    #: Paper section 8 optimization: stamp the candidate's *connectivity*
    #: (peers heard from last round) into the ballot's priority field when
    #: attempting a takeover, so better-connected servers win ties. Only
    #: applied at bump time — a stable leader is never displaced just
    #: because some server got better connected (the paper's stability
    #: argument).
    connectivity_priority: bool = False
    #: Opt-in graceful degradation (ROADMAP item 5's reaction half): the
    #: server watches the cadence of its *own* heartbeat rounds through a
    #: :class:`~repro.obs.health.SelfDegradationMonitor`. While it scores
    #: itself fail-slow it advertises ``qc=False``, withholds its own
    #: ballot from candidacy, demotes its ballot priority, and declines
    #: takeover bumps — so leadership drains away from a limping node in
    #: O(heartbeat rounds) instead of the node clinging on forever (a
    #: 100×-slowed leader still answers heartbeats promptly, so default
    #: BLE never displaces it). Off by default; the default path is
    #: byte-identical with this flag unset.
    gray_aware: bool = False

    def __post_init__(self) -> None:
        if self.pid <= 0:
            raise ConfigError("server pids must be positive (0 is the bottom ballot)")
        if self.pid in self.peers:
            raise ConfigError("peers must not contain the server's own pid")
        if self.hb_period_ms <= 0:
            raise ConfigError("hb_period_ms must be positive")

    @property
    def cluster_size(self) -> int:
        return len(self.peers) + 1

    @property
    def majority(self) -> int:
        return self.cluster_size // 2 + 1


@dataclass
class BLEStats:
    """Counters exposed for the evaluation harness."""

    rounds: int = 0
    leader_changes: int = 0
    ballots_bumped: int = 0


class BallotLeaderElection(Instrumented):
    """One BLE instance (one per configuration per server)."""

    def __init__(
        self,
        config: BLEConfig,
        initial_leader: Optional[Ballot] = None,
        initial_ballot: Optional[Ballot] = None,
    ):
        """``initial_leader`` seeds a pre-elected leader (used by benchmark
        warm starts); ``initial_ballot`` restores this server's own ballot
        after a crash so it never reissues a round it may already have led
        (see the recovery discussion in the module docstring of
        :mod:`repro.omni.server`)."""
        self._config = config
        if initial_ballot is not None and initial_ballot.pid != config.pid:
            raise ConfigError("initial_ballot must carry this server's pid")
        self._current_ballot = initial_ballot or Ballot(
            n=0, priority=config.priority, pid=config.pid
        )
        #: Replies gathered in the current round: ballot -> qc flag.
        self._ballots: List[Tuple[Ballot, bool]] = []
        #: Whether this server was quorum-connected in the last round.
        self._quorum_connected = True
        self._leader: Optional[Ballot] = initial_leader
        self._hb_round = 0
        self._last_connectivity = 0
        #: Health telemetry: peers whose reply made it into the last
        #: *closed* round, their request->reply RTTs (only for replies
        #: delivered with a timestamp), and how late that round closed
        #: relative to the nominal period.
        self._last_heard: Tuple[int, ...] = ()
        self._round_rtts: Dict[int, float] = {}
        self._last_round_rtts: Dict[int, float] = {}
        self._round_started_at: Optional[float] = None
        self._last_close_at: Optional[float] = None
        self._last_round_jitter_ms: Optional[float] = None
        #: When we last observed replies from a majority (read-lease basis).
        self._last_quorum_at: Optional[float] = None
        self._now = 0.0
        self._next_timeout: Optional[float] = None
        #: When leadership was last lost (basis of the election-duration
        #: histogram); None while a leader is known.
        self._leaderless_since: Optional[float] = None
        self._outbox: List[Tuple[int, Any]] = []
        self._leader_events: List[Ballot] = []
        #: Gray-aware mode only: scores this server's own round cadence.
        self._self_monitor: Optional[SelfDegradationMonitor] = (
            SelfDegradationMonitor(
                config.pid, expected_interval_ms=config.hb_period_ms
            )
            if config.gray_aware else None
        )
        self.stats = BLEStats()
        if initial_leader is not None and initial_leader.pid == config.pid:
            # Bootstrapping with ourselves as the seeded leader: adopt the
            # seeded ballot so our heartbeats advertise it.
            self._current_ballot = initial_leader

    # -- public accessors ---------------------------------------------------

    @property
    def config(self) -> BLEConfig:
        return self._config

    @property
    def pid(self) -> int:
        return self._config.pid

    @property
    def current_ballot(self) -> Ballot:
        return self._current_ballot

    @property
    def leader(self) -> Optional[Ballot]:
        """The ballot this server currently considers leader, if any."""
        return self._leader

    @property
    def quorum_connected(self) -> bool:
        """Whether this server was QC in the most recent completed round."""
        return self._quorum_connected

    @property
    def last_heard(self) -> Tuple[int, ...]:
        """Peers whose reply arrived within the last closed round, sorted.

        This is the row this server contributes to the health observatory's
        quorum-connectivity matrix: a peer appears exactly when both link
        directions worked within one heartbeat round."""
        return self._last_heard

    @property
    def last_connectivity(self) -> int:
        """Connectivity (peers heard + self) of the last closed round."""
        return self._last_connectivity

    @property
    def hb_round(self) -> int:
        """The current heartbeat round number."""
        return self._hb_round

    @property
    def last_round_rtts(self) -> Dict[int, float]:
        """Request->reply RTT per peer for the last closed round (ms).

        Only populated for replies delivered through the timestamped
        :meth:`on_message` form; a copy, safe to hold."""
        return dict(self._last_round_rtts)

    @property
    def last_round_jitter_ms(self) -> Optional[float]:
        """|actual - nominal| interval between the last two round closes,
        or None before two rounds have closed. Tick-grained scheduling lag
        shows up here — the heartbeat-round jitter signal the gray-failure
        detector consumes."""
        return self._last_round_jitter_ms

    @property
    def self_degraded(self) -> bool:
        """Whether this server currently scores *itself* fail-slow.

        Always False outside ``gray_aware`` mode."""
        return (self._self_monitor is not None
                and self._self_monitor.degraded)

    def self_health(self) -> Optional[Dict[str, Any]]:
        """JSON-safe self-degradation state, or None outside gray-aware."""
        if self._self_monitor is None:
            return None
        return self._self_monitor.snapshot()

    def _on_observability(self, registry: MetricsRegistry) -> None:
        if self._self_monitor is not None:
            self._self_monitor.bind(registry)

    # -- driving ------------------------------------------------------------

    def start(self, now_ms: float) -> None:
        """Begin heartbeat rounds; must be called once before ticking."""
        self._now = now_ms
        self._start_round(now_ms)

    def tick(self, now_ms: float) -> None:
        """Advance time; closes the round when the heartbeat period elapsed."""
        self._now = now_ms
        if self._next_timeout is None or now_ms < self._next_timeout:
            return
        self._hb_timeout()
        self._start_round(now_ms)

    def quorum_heard_within(self, now_ms: float, window_ms: float) -> bool:
        """Whether a majority of heartbeat replies arrived within
        ``window_ms`` — the basis of leader read leases: no new leader can
        have been elected while the current one keeps hearing a majority
        every round (takeovers require a round in which the leader's ballot
        was absent at some majority member)."""
        if self._last_quorum_at is None:
            return False
        return now_ms - self._last_quorum_at <= window_ms

    def on_message(self, src: int, msg: Any,
                   now_ms: Optional[float] = None) -> None:
        """Handle a heartbeat request or reply from peer ``src``.

        ``now_ms`` is optional (protocol behaviour never depends on it);
        when given, current-round replies additionally yield a per-peer
        request->reply RTT sample for the gray-failure detector.
        """
        if isinstance(msg, HeartbeatRequest):
            flag = self._quorum_connected if self._config.use_qc_flag else True
            if flag and self.self_degraded:
                # Gray-aware: a self-diagnosed fail-slow server advertises
                # qc=False so peers drop its ballot from candidacy — the
                # same mechanism BLE already uses to route around servers
                # that lost quorum connectivity.
                flag = False
            self._send(src, HeartbeatReply(msg.round, self._current_ballot, flag))
        elif isinstance(msg, HeartbeatReply):
            if msg.round == self._hb_round:
                self._ballots.append((msg.ballot, msg.quorum_connected))
                if now_ms is not None and self._round_started_at is not None:
                    self._round_rtts[src] = now_ms - self._round_started_at
            # Late replies from older rounds are simply ignored (paper: "A
            # late heartbeat is simply ignored and does not affect
            # correctness").

    def take_outbox(self) -> List[Tuple[int, Any]]:
        """Drain pending outgoing ``(dst, message)`` pairs."""
        out, self._outbox = self._outbox, []
        return out

    def take_leader_events(self) -> List[Ballot]:
        """Drain newly elected leader ballots (to feed Sequence Paxos)."""
        events, self._leader_events = self._leader_events, []
        return events

    # -- internals ------------------------------------------------------------

    def _send(self, dst: int, msg: Any) -> None:
        self._outbox.append((dst, msg))

    def _start_round(self, now_ms: float) -> None:
        self._hb_round += 1
        self._next_timeout = now_ms + self._config.hb_period_ms
        self._round_started_at = now_ms
        for peer in self._config.peers:
            self._send(peer, HeartbeatRequest(self._hb_round))

    def _hb_timeout(self) -> None:
        """Close the current round: evaluate replies and maybe elect."""
        self.stats.rounds += 1
        if self._self_monitor is not None:
            # Feed our own round cadence to the self monitor: a fail-slow
            # server closes rounds late by exactly its slowdown factor.
            was_degraded = self._self_monitor.degraded
            self._self_monitor.observe_fire(self._now)
            if self._self_monitor.degraded != was_degraded:
                if self._self_monitor.degraded:
                    # Onset: demote ballot priority so any same-round tie
                    # resolves away from us.
                    self._current_ballot = (
                        self._current_ballot.with_priority(0)
                    )
                else:
                    # Recovered: restore the configured preference.
                    self._current_ballot = self._current_ballot.with_priority(
                        self._config.priority
                    )
        # Capture the health view before the election logic consumes the
        # reply list (check_leader appends our own ballot and clears it).
        self._last_heard = tuple(sorted(
            ballot.pid for (ballot, _qc) in self._ballots
        ))
        self._last_round_rtts = self._round_rtts
        self._round_rtts = {}
        if self._last_close_at is not None:
            self._last_round_jitter_ms = abs(
                (self._now - self._last_close_at) - self._config.hb_period_ms
            )
            if self._obs.enabled:
                self._obs.gauge(
                    "repro_heartbeat_round_jitter_ms", pid=self.pid
                ).set(self._last_round_jitter_ms)
        self._last_close_at = self._now
        self._last_connectivity = len(self._ballots) + 1
        was_qc = self._quorum_connected
        if len(self._ballots) + 1 >= self._config.majority:
            self._last_quorum_at = self._now
            # We heard from a majority (counting ourselves): we are QC and
            # allowed to evaluate leadership. Our own ballot participates
            # with the flag from the *previous* round — withheld while
            # gray-aware mode scores us fail-slow, mirroring what we
            # advertise to peers.
            own_flag = self._quorum_connected and not self.self_degraded
            self._ballots.append((self._current_ballot, own_flag))
            self._check_leader()
        else:
            self._ballots.clear()
            self._quorum_connected = False
        if self._obs.enabled and self._quorum_connected != was_qc:
            self._obs.emit(QCFlagChanged(
                pid=self.pid, quorum_connected=self._quorum_connected
            ))
            self._obs.gauge("repro_quorum_connected", pid=self.pid).set(
                1.0 if self._quorum_connected else 0.0
            )

    def _check_leader(self) -> None:
        candidates = [b for (b, qc) in self._ballots if qc]
        self._ballots = []
        self._quorum_connected = True
        top = max(candidates) if candidates else BOTTOM
        leader_ballot = self._leader if self._leader is not None else BOTTOM
        if top < leader_ballot:
            # The leader's ballot was absent (disconnected) or carried
            # qc=false: the leader cannot make progress. Bump our ballot
            # beyond the leader's and attempt to take over next round.
            if self.self_degraded:
                # Gray-aware: a self-diagnosed fail-slow server declines
                # candidacy — bumping would let the limping node win the
                # race it is trying to abdicate. A healthy peer runs this
                # same branch and takes over instead.
                return
            if self._config.connectivity_priority:
                self._current_ballot = self._current_ballot.with_priority(
                    self._last_connectivity
                )
            self._current_ballot = self._current_ballot.bump(leader_ballot)
            self._leader = None
            if self._leaderless_since is None:
                self._leaderless_since = self._now
            self.stats.ballots_bumped += 1
            if self._obs.enabled:
                self._obs.emit(BallotBumped(
                    pid=self.pid, ballot=self._current_ballot.n
                ))
                self._obs.counter("repro_ballots_bumped_total",
                                  pid=self.pid).inc()
        elif top != leader_ballot:
            # A higher quorum-connected ballot exists: elect it.
            self._leader = top
            self.stats.leader_changes += 1
            self._leader_events.append(top)
            if self._obs.enabled:
                self._obs.emit(BallotElected(
                    pid=self.pid, leader=top.pid, ballot=top.n
                ))
                self._obs.counter("repro_leader_changes_total",
                                  pid=self.pid).inc()
                if self._leaderless_since is not None:
                    self._obs.histogram("repro_election_duration_ms").observe(
                        self._now - self._leaderless_since
                    )
            self._leaderless_since = None
