"""Ballots: the totally-ordered round identifiers of Omni-Paxos.

A ballot is the triple ``(n, priority, pid)`` compared lexicographically.
``n`` is the monotonically increasing round counter, ``priority`` is the
optional custom tie-breaking field ``c`` described in paper section 5.2
("the ballot can be extended with a custom field c such that b = (s, c,
pid)"), and ``pid`` is the unique server id which makes every ballot unique
(property LE3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.compat import SLOTTED, fast_frozen_pickle


@fast_frozen_pickle
@dataclass(frozen=True, order=True, **SLOTTED)
class Ballot:
    """A totally-ordered, unique round identifier.

    Ordering is ``(n, priority, pid)`` lexicographic, which gives:

    - monotonicity in ``n`` — a higher round always wins,
    - priority tie-breaking between candidates in the same round,
    - uniqueness via ``pid`` (no two servers share a pid).
    """

    n: int = 0
    priority: int = 0
    pid: int = 0

    def bump(self, beyond: "Ballot") -> "Ballot":
        """Return this server's next ballot that outranks ``beyond``.

        Used by BLE when a server attempts to take over leadership: it must
        propose a round number strictly greater than the current leader's.
        The priority and pid are preserved.
        """
        return Ballot(n=max(self.n, beyond.n) + 1, priority=self.priority, pid=self.pid)

    def with_priority(self, priority: int) -> "Ballot":
        """Return a copy with a different tie-breaking priority."""
        return Ballot(n=self.n, priority=priority, pid=self.pid)

    def __str__(self) -> str:
        return f"b(n={self.n},c={self.priority},pid={self.pid})"


#: The bottom ballot: smaller than every ballot a real server can hold
#: (real server pids are >= 1).
BOTTOM = Ballot(0, 0, 0)


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class QCBallot:
    """A ballot paired with the sender's quorum-connected flag.

    This is exactly what BLE heartbeats carry (paper section 5.2): "The
    heartbeat of a server consists of its ballot number and a flag indicating
    if it is quorum-connected."
    """

    ballot: Ballot
    quorum_connected: bool = field(default=True)
