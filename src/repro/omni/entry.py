"""Log entries: client commands and stop-signs.

The replicated log holds two kinds of entries. :class:`Command` wraps an
opaque client payload. :class:`StopSign` is the special reconfiguration
entry of paper section 6: once a stop-sign is chosen in configuration
``c_i``, no further entries can be decided in ``c_i`` and the service layer
transitions the cluster to ``c_{i+1}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.compat import SLOTTED, fast_frozen_pickle
from typing import Any, Optional, Tuple


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class Command:
    """A client command to be applied to the replicated state machine.

    ``data`` is opaque to the replication layer. ``client_id`` and ``seq``
    exist so workloads and state machines can deduplicate and correlate
    replies; the protocol itself never inspects them.
    """

    data: bytes = b""
    client_id: int = 0
    seq: int = 0

    def wire_size(self) -> int:
        """Approximate serialized size in bytes (payload + small header)."""
        return len(self.data) + 16


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class StopSign:
    """The reconfiguration entry that ends a configuration.

    Contains the id and the member set of the *next* configuration, plus an
    opaque metadata blob (the paper mentions it can carry e.g. the new
    software version for in-place upgrades).
    """

    config_id: int
    servers: Tuple[int, ...]
    metadata: Optional[bytes] = field(default=None)

    def wire_size(self) -> int:
        size = 24 + 8 * len(self.servers)
        if self.metadata is not None:
            size += len(self.metadata)
        return size


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class SnapshotInstalled:
    """Marker surfaced in a replica's decided stream when a *snapshot*
    replaced a log prefix.

    The pair ``(covers_idx, SnapshotInstalled(state))`` means: entries
    ``[0, covers_idx)`` were folded into ``state`` by the configured
    snapshotter; apply ``state`` wholesale instead of replaying them.
    Only appears when a snapshotter is configured (see
    :class:`repro.omni.sequence_paxos.SequencePaxosConfig`).
    """

    state: Any

    def wire_size(self) -> int:
        sizer = getattr(self.state, "wire_size", None)
        if sizer is not None:
            return sizer()
        try:
            return max(len(self.state), 16)  # bytes-like states
        except TypeError:
            return 64


def is_stopsign(entry: Any) -> bool:
    """Return True when ``entry`` is a stop-sign."""
    return isinstance(entry, StopSign)


def entry_wire_size(entry: Any) -> int:
    """Approximate serialized size of any log entry."""
    wire_size = getattr(entry, "wire_size", None)
    if wire_size is not None:
        return wire_size()
    return 16
