"""OmniPaxosServer: the composed RSM server (paper Figure 2).

One server hosts, per configuration, a Ballot Leader Election instance and a
Sequence Paxos instance, plus the *service layer* that owns the replicated
log across configurations and performs reconfiguration:

- Sequence Paxos decides entries; the service layer appends them to the
  global replicated log.
- When a stop-sign is decided, the configuration is stopped. A server that
  continues into the next configuration starts its new BLE/Sequence Paxos
  instances immediately (it already holds the whole log) and announces the
  new configuration to every member. A *new* server first migrates the log
  — in parallel from any donors — before starting (paper section 6).
- Messages are wrapped in :class:`~repro.omni.messages.Envelope` so BLE and
  Sequence Paxos instances only ever talk to peers of the same
  configuration.

Crash recovery: Sequence Paxos state is persistent via
:class:`~repro.omni.storage.Storage`. On :meth:`recover` the volatile
protocol objects are rebuilt and BLE's own ballot is restored from the
persisted promise — a server must never reissue a ballot number it may
already have led with (property LE3), and the promise is a persisted upper
bound on every ballot this server ever led.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, NotLeaderError
from repro.obs.events import (
    HeartbeatViewReported,
    MigrationCompleted,
    MigrationDonorPicked,
    MigrationSegmentReceived,
    SessionDropped,
    StopSignDecided,
)
from repro.obs.health import GrayFailureDetector
from repro.obs.registry import Instrumented, MetricsRegistry
from repro.obs.spans import TraceContext, entry_trace_id
from repro.omni.ballot import Ballot
from repro.omni.ble import BallotLeaderElection, BLEConfig
from repro.omni.entry import StopSign, is_stopsign
from repro.omni.messages import (
    COMPONENT_BLE,
    COMPONENT_SERVICE,
    COMPONENT_SP,
    Envelope,
    HeartbeatRequest,
    JoinComplete,
    LogPullRequest,
    LogSegment,
    NewConfiguration,
)
from repro.omni.reconfig import PARALLEL, MigrationPlan, serve_pull_request
from repro.omni.sequence_paxos import SequencePaxos, SequencePaxosConfig
from repro.omni.storage import InMemoryStorage, Storage
from repro.replica import Replica


@dataclass(frozen=True)
class ClusterConfig:
    """One configuration: an id and a fixed member set."""

    config_id: int
    servers: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigError("a configuration needs at least one server")
        if len(set(self.servers)) != len(self.servers):
            raise ConfigError("duplicate server pids in configuration")
        if any(pid <= 0 for pid in self.servers):
            raise ConfigError("server pids must be positive")

    @property
    def majority(self) -> int:
        return len(self.servers) // 2 + 1

    def peers_of(self, pid: int) -> Tuple[int, ...]:
        return tuple(p for p in self.servers if p != pid)


def _default_storage_factory(config_id: int) -> Storage:
    return InMemoryStorage()


@dataclass
class OmniPaxosConfig:
    """Static configuration of one Omni-Paxos server."""

    pid: int
    cluster: ClusterConfig
    hb_period_ms: float = 100.0
    #: Custom ballot tie-breaking priority (paper section 5.2).
    priority: int = 0
    #: Disable only for the ablation that shows why the QC flag matters.
    use_qc_flag: bool = True
    #: Prefer better-connected candidates at takeover time (paper section 8).
    connectivity_priority: bool = False
    #: Opt-in graceful degradation: a server whose own BLE round cadence
    #: scores it fail-slow (see
    #: :class:`~repro.obs.health.SelfDegradationMonitor`) withdraws from
    #: candidacy and advertises qc=False so leadership drains to a healthy
    #: peer. Default off; default behaviour is untouched.
    gray_aware: bool = False
    #: ``"parallel"`` (paper, Figure 6b) or ``"leader"`` (Figure 6a ablation).
    migration_strategy: str = PARALLEL
    migration_chunk_entries: int = 10_000
    migration_retry_ms: float = 1_000.0
    #: How often continuing servers re-announce a new configuration to
    #: members that have not confirmed the join yet.
    announce_period_ms: float = 500.0
    #: Seed a pre-elected leader so benchmarks start in steady state.
    initial_leader: Optional[int] = None
    #: When set, proposals accumulate and flush as one replication batch
    #: every this-many milliseconds (latency traded for per-message
    #: overhead — the "batch" setting of real replication systems).
    flush_interval_ms: Optional[float] = None
    storage_factory: Callable[[int], Storage] = _default_storage_factory

    @property
    def is_joiner(self) -> bool:
        """True when this server is not in the initial configuration: it
        stays idle until a continuing server announces a configuration that
        includes it (paper section 6, adding new servers)."""
        return self.pid not in self.cluster.servers


@dataclass
class _Instance:
    """One configuration's protocol instances at this server."""

    cluster: ClusterConfig
    sp: SequencePaxos
    ble: BallotLeaderElection
    #: Global log index where this configuration's segment starts.
    global_offset: int
    #: The active configuration accepts proposals and runs BLE.
    active: bool = True


@dataclass
class ServerStats:
    """Counters for the evaluation harness."""

    dropped_cross_config: int = 0
    buffered_in_transition: int = 0
    reconfigurations: int = 0


class OmniPaxosServer(Replica, Instrumented):
    """A complete Omni-Paxos RSM server."""

    def __init__(self, config: OmniPaxosConfig):
        self._config = config
        self._instances: Dict[int, _Instance] = {}
        self._current_cid: Optional[int] = None
        #: The service layer's replicated log: every decided entry across
        #: all configurations, in order (segments end with stop-signs).
        self._global_log: List[Any] = []
        self._decided_out: List[Tuple[int, Any]] = []
        self._migration: Optional[MigrationPlan] = None
        self._pending_cluster: Optional[ClusterConfig] = None
        #: Peers we still owe a NewConfiguration announcement -> deadline.
        self._announce_deadlines: Dict[int, float] = {}
        self._announce_msg: Optional[NewConfiguration] = None
        self._transition_buffer: List[Any] = []
        #: Proposals awaiting the next flush (flush_interval_ms batching).
        self._flush_buffer: List[Any] = []
        self._next_flush_at: Optional[float] = None
        self._outbox: List[Tuple[int, Envelope]] = []
        #: Tracing-only: the context to stamp on outgoing envelopes while
        #: handling one message/proposal (None outside tracing).
        self._active_trace: Optional[TraceContext] = None
        self._span_counter = 0
        self._now = 0.0
        self._started = False
        self._crashed = False
        self._migration_started_ms: Optional[float] = None
        #: Gray-failure detector over this server's peers; fed from
        #: heartbeat-beacon arrivals and BLE per-round RTTs (obs-on only).
        self._gray = GrayFailureDetector(
            pid=config.pid, expected_interval_ms=config.hb_period_ms
        )
        #: Last heartbeat round reported per config id (health views are
        #: emitted once per closed round, not once per tick).
        self._reported_round: Dict[int, int] = {}
        self.stats = ServerStats()

    def _on_observability(self, registry: MetricsRegistry) -> None:
        self._gray.bind(registry)
        # Instances may predate the wiring call; propagate to all of them.
        for inst in self._instances.values():
            inst.sp.set_observability(registry)
            inst.ble.set_observability(registry)

    # ------------------------------------------------------------------
    # Replica interface: accessors
    # ------------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self._config.pid

    @property
    def members(self) -> Tuple[int, ...]:
        inst = self._current_instance()
        if inst is not None:
            return inst.cluster.servers
        if self._pending_cluster is not None:
            return self._pending_cluster.servers
        return self._config.cluster.servers

    @property
    def is_leader(self) -> bool:
        inst = self._current_instance()
        return inst is not None and inst.active and inst.sp.is_leader

    @property
    def leader_pid(self) -> Optional[int]:
        inst = self._current_instance()
        if inst is None:
            return None
        return inst.sp.leader_pid

    @property
    def current_config(self) -> Optional[ClusterConfig]:
        inst = self._current_instance()
        return inst.cluster if inst is not None else None

    @property
    def global_log_len(self) -> int:
        """Length of the decided replicated log at this server."""
        return len(self._global_log)

    @property
    def migrating(self) -> bool:
        return self._migration is not None

    def read_log(self, from_idx: int = 0, to_idx: Optional[int] = None) -> Tuple[Any, ...]:
        """A snapshot of the decided replicated log (service layer view)."""
        if to_idx is None:
            to_idx = len(self._global_log)
        return tuple(self._global_log[from_idx:to_idx])

    def ble_of_current(self) -> Optional[BallotLeaderElection]:
        """The active BLE instance (for tests and metrics)."""
        inst = self._current_instance()
        return inst.ble if inst is not None else None

    def sp_of_current(self) -> Optional[SequencePaxos]:
        """The active Sequence Paxos instance (for tests and metrics)."""
        inst = self._current_instance()
        return inst.sp if inst is not None else None

    @property
    def gray_detector(self) -> GrayFailureDetector:
        """This server's gray-failure detector (health observatory)."""
        return self._gray

    def status(self) -> Dict[str, Any]:
        """Admin introspection: this server's current health view.

        JSON-safe and cheap — safe to call from the sim harness, the
        runtime admin endpoint, or a test at any time, observability on or
        off (the connectivity fields only populate once heartbeat rounds
        close; the ``degraded`` map only when the obs layer feeds the
        gray-failure detector).
        """
        inst = self._current_instance()
        ble = inst.ble if inst is not None and inst.active else None
        sp = inst.sp if inst is not None else None
        leader = self.leader_pid
        return {
            "pid": self.pid,
            "protocol": "omni",
            "phase": ("crashed" if self._crashed
                      else "leader" if self.is_leader
                      else "migrating" if self.migrating
                      else "follower"),
            "config_id": inst.cluster.config_id if inst is not None else None,
            "ballot": ble.current_ballot.n if ble is not None else 0,
            "leader": leader if leader is not None else 0,
            "quorum_connected": (
                ble.quorum_connected if ble is not None else False
            ),
            "connectivity": ble.last_connectivity if ble is not None else 0,
            "peers_heard": list(ble.last_heard) if ble is not None else [],
            "hb_round": ble.hb_round if ble is not None else 0,
            "log_len": sp.log_len if sp is not None else 0,
            "decided_idx": len(self._global_log),
            "migrating": self.migrating,
            "degraded": self._gray.snapshot(),
            "self_health": ble.self_health() if ble is not None else None,
        }

    def _report_health(self, inst: _Instance) -> None:
        """Emit one :class:`HeartbeatViewReported` per closed BLE round and
        feed the round's RTT samples to the gray-failure detector. Only
        called with observability on."""
        ble = inst.ble
        rounds = ble.stats.rounds
        cid = inst.cluster.config_id
        if self._reported_round.get(cid) == rounds or rounds == 0:
            return
        self._reported_round[cid] = rounds
        for peer, rtt in ble.last_round_rtts.items():
            self._gray.observe_rtt(peer, rtt)
        leader = ble.leader
        self._obs.emit(HeartbeatViewReported(
            pid=self.pid,
            round=ble.hb_round,
            ballot=ble.current_ballot.n,
            leader=leader.pid if leader is not None else 0,
            quorum_connected=ble.quorum_connected,
            connectivity=ble.last_connectivity,
            peers_heard=ble.last_heard,
            phase="leader" if self.is_leader else "follower",
            log_len=inst.sp.log_len,
            decided_idx=len(self._global_log),
            jitter_ms=ble.last_round_jitter_ms or 0.0,
        ))

    def queue_depths(self) -> Dict[str, int]:
        """Instantaneous staging-queue depths for the backpressure profiler
        (see ``repro.obs.prof``): the server's envelope outbox plus the
        active Sequence Paxos instance's outbox and pre-accept proposal
        buffer."""
        sp = self.sp_of_current()
        return {
            "server_outbox": len(self._outbox) + len(self._flush_buffer),
            "sp_outbox": sp.outbox_depth if sp is not None else 0,
            "sp_pending": sp.pending_proposals if sp is not None else 0,
        }

    # ------------------------------------------------------------------
    # Replica interface: driving
    # ------------------------------------------------------------------

    def start(self, now_ms: float) -> None:
        """Start the initial configuration's instances."""
        if self._started:
            return
        self._started = True
        self._now = now_ms
        if not self._config.is_joiner:
            self._start_instance(self._config.cluster, now_ms, announce=False)

    def tick(self, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        self._now = now_ms
        inst = self._current_instance()
        if inst is not None and inst.active:
            inst.ble.tick(now_ms)
            inst.sp.tick(now_ms)
            if self._obs_on:
                self._report_health(inst)
        if self._migration is not None:
            self._migration.tick(now_ms)
            self._drain_migration(now_ms)
        self._tick_announcements(now_ms)
        self._flush_proposals(now_ms)
        self._pump()

    def _flush_proposals(self, now_ms: float) -> None:
        """Drain the flush buffer as one replication batch when due."""
        if self._next_flush_at is None or now_ms < self._next_flush_at:
            return
        self._next_flush_at = None
        if not self._flush_buffer:
            return
        pending, self._flush_buffer = self._flush_buffer, []
        inst = self._current_instance()
        if inst is None or not inst.active or inst.sp.stopped():
            self._transition_buffer.extend(pending)
            self.stats.buffered_in_transition += len(pending)
            return
        inst.sp.propose_batch(pending)

    def on_message(self, src: int, msg: Any, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        self._now = now_ms
        if not isinstance(msg, Envelope):
            raise TypeError(f"OmniPaxosServer expects Envelope, got {type(msg)!r}")
        if self._obs.tracing and msg.trace is not None:
            # Continue the incoming message's causal chain: everything this
            # handling turn sends is a child hop of the received context.
            self._active_trace = msg.trace.child(self._next_span_id())
        try:
            if msg.component == COMPONENT_SERVICE:
                self._on_service(src, msg.payload, now_ms)
            else:
                inst = self._instances.get(msg.config_id)
                if inst is None:
                    self.stats.dropped_cross_config += 1
                elif msg.component == COMPONENT_BLE:
                    if inst.active:
                        if self._obs_on and isinstance(msg.payload,
                                                       HeartbeatRequest):
                            # The peer's own timer fired: a beacon for the
                            # gray-failure detector's interval signal.
                            self._gray.observe_beacon(src, now_ms)
                        inst.ble.on_message(src, msg.payload, now_ms)
                elif msg.component == COMPONENT_SP:
                    inst.sp.on_message(src, msg.payload)
            self._pump()
        finally:
            self._active_trace = None

    def propose(self, entry: Any, now_ms: float) -> None:
        """Propose a client entry.

        While the server transitions between configurations (stop-sign in the
        log but the next instance not started yet), proposals are buffered
        and re-proposed in the new configuration in one batch — this is what
        masks reconfiguration downtime at high pipeline levels (paper §7.3).
        """
        if self._crashed or not self._started:
            raise NotLeaderError("server is down")
        self._now = now_ms
        inst = self._current_instance()
        if inst is None or not inst.active:
            if self._retired() or (self._pending_cluster is None
                                   and not self._instances):
                raise NotLeaderError("server is not part of the current configuration")
            self._transition_buffer.append(entry)
            self.stats.buffered_in_transition += 1
            return
        if inst.sp.stopped():
            self._transition_buffer.append(entry)
            self.stats.buffered_in_transition += 1
            return
        if self._config.flush_interval_ms is not None:
            self._flush_buffer.append(entry)
            if self._next_flush_at is None:
                self._next_flush_at = now_ms + self._config.flush_interval_ms
            return
        if self._obs.tracing:
            self._active_trace = self._root_trace(entry)
        try:
            inst.sp.propose(entry)
            self._pump()
        finally:
            self._active_trace = None

    def propose_batch(self, entries: List[Any], now_ms: float) -> None:
        """Propose several entries in one replication message."""
        if self._crashed or not self._started:
            raise NotLeaderError("server is down")
        self._now = now_ms
        inst = self._current_instance()
        if inst is None or not inst.active or inst.sp.stopped():
            for entry in entries:
                self.propose(entry, now_ms)
            return
        if self._obs.tracing and entries:
            self._active_trace = self._root_trace(entries[0])
        try:
            inst.sp.propose_batch(entries)
            self._pump()
        finally:
            self._active_trace = None

    def holds_read_lease(self, now_ms: float, safety: float = 0.8) -> bool:
        """Whether this leader may serve *local* linearizable reads.

        The lease argument: a BLE takeover requires some majority member to
        close a heartbeat round in which this leader's ballot was absent —
        impossible while this leader keeps collecting majority replies every
        round. If a majority was heard within ``safety * hb_period`` ago, no
        competing leader can have been elected yet, so the local decided
        state reflects every committed write. ``safety < 1`` absorbs timer
        skew between servers.
        """
        inst = self._current_instance()
        if inst is None or not inst.active or not inst.sp.is_leader:
            return False
        window = safety * self._config.hb_period_ms
        return inst.ble.quorum_heard_within(now_ms, window)

    def trim(self, global_idx: Optional[int] = None) -> int:
        """Compact the current configuration's replication log (leader only).

        ``global_idx`` is in replicated-log coordinates; ``None`` trims as
        far as currently safe (decided at every server). The service layer's
        own copy of the log is kept — it is what log migration serves to
        joining servers — so this reclaims replication-layer storage, like
        segment archival in Delos-style designs. Returns the global index
        trimmed to.
        """
        inst = self._current_instance()
        if inst is None or not inst.active:
            raise NotLeaderError("no active configuration at this server")
        local = None if global_idx is None else max(
            global_idx - inst.global_offset, 0
        )
        trimmed = inst.sp.trim(local)
        self._pump()
        return inst.global_offset + trimmed

    def propose_reconfiguration(self, servers: Tuple[int, ...],
                                metadata: Optional[bytes] = None,
                                now_ms: Optional[float] = None) -> None:
        """Propose moving the cluster to member set ``servers``."""
        inst = self._current_instance()
        if inst is None or not inst.active:
            raise NotLeaderError("no active configuration at this server")
        if now_ms is not None:
            self._now = now_ms
        inst.sp.propose_reconfiguration(servers, metadata)
        self._pump()

    def take_outbox(self) -> List[Tuple[int, Envelope]]:
        out, self._outbox = self._outbox, []
        return out

    def take_decided(self) -> List[Tuple[int, Any]]:
        out, self._decided_out = self._decided_out, []
        return out

    # ------------------------------------------------------------------
    # Replica interface: failures
    # ------------------------------------------------------------------

    def on_session_drop(self, peer: int, now_ms: float) -> None:
        """A transport session to ``peer`` was re-established after a drop."""
        if self._crashed or not self._started:
            return
        self._now = now_ms
        if self._obs.enabled:
            self._obs.emit(SessionDropped(pid=self.pid, peer=peer))
        inst = self._current_instance()
        if inst is not None and peer in inst.cluster.servers:
            inst.sp.reconnected(peer)
        self._pump()

    def crash(self) -> None:
        """Lose all volatile state (persistent storage survives)."""
        self._crashed = True

    def recover(self, now_ms: float) -> None:
        """Restart after a crash: rebuild volatile protocol state.

        Sequence Paxos reloads from storage and enters the recover state,
        asking peers for a Prepare (paper section 4.1.3). BLE restores its
        own ballot from the persisted promise so LE3 is preserved.
        """
        if not self._crashed:
            return
        self._crashed = False
        self._now = now_ms
        inst = self._current_instance()
        if inst is None:
            return
        cluster = inst.cluster
        sp_cfg = SequencePaxosConfig(
            pid=self.pid,
            peers=cluster.peers_of(self.pid),
            config_id=cluster.config_id,
            resend_period_ms=4 * self._config.hb_period_ms,
        )
        sp = SequencePaxos(sp_cfg, inst.sp.storage)
        sp.set_observability(self._obs)
        sp.fail_recover()
        promise = sp.storage.get_promise()
        ble = BallotLeaderElection(
            self._ble_config(cluster),
            initial_ballot=Ballot(
                n=promise.n, priority=self._config.priority, pid=self.pid
            ),
        )
        ble.set_observability(self._obs)
        ble.start(now_ms)
        inst.sp = sp
        inst.ble = ble
        # Drop any global-log entries the service layer had applied beyond
        # what storage proves decided (none with persistent storage, but be
        # defensive about the invariant).
        proven = inst.global_offset + sp.decided_idx
        del self._global_log[proven:]
        self._pump()

    # ------------------------------------------------------------------
    # internals: instances and pumping
    # ------------------------------------------------------------------

    def _current_instance(self) -> Optional[_Instance]:
        if self._current_cid is None:
            return None
        return self._instances.get(self._current_cid)

    def _retired(self) -> bool:
        """True when this server is not part of any current/future config."""
        if self._pending_cluster is not None:
            return self.pid not in self._pending_cluster.servers
        inst = self._current_instance()
        return inst is not None and not inst.active

    def _ble_config(self, cluster: ClusterConfig) -> BLEConfig:
        return BLEConfig(
            pid=self.pid,
            peers=cluster.peers_of(self.pid),
            hb_period_ms=self._config.hb_period_ms,
            priority=self._config.priority,
            use_qc_flag=self._config.use_qc_flag,
            connectivity_priority=self._config.connectivity_priority,
            gray_aware=self._config.gray_aware,
        )

    def _start_instance(self, cluster: ClusterConfig, now_ms: float,
                        announce: bool) -> None:
        sp_cfg = SequencePaxosConfig(
            pid=self.pid,
            peers=cluster.peers_of(self.pid),
            config_id=cluster.config_id,
            resend_period_ms=4 * self._config.hb_period_ms,
        )
        storage = self._config.storage_factory(cluster.config_id)
        sp = SequencePaxos(sp_cfg, storage)
        sp.set_observability(self._obs)
        seed: Optional[Ballot] = None
        if cluster.config_id == self._config.cluster.config_id and \
                self._config.initial_leader is not None:
            if self._config.initial_leader not in cluster.servers:
                raise ConfigError("initial_leader must be a configuration member")
            seed = Ballot(n=1, priority=0, pid=self._config.initial_leader)
        ble = BallotLeaderElection(self._ble_config(cluster), initial_leader=seed)
        ble.set_observability(self._obs)
        ble.start(now_ms)
        inst = _Instance(
            cluster=cluster, sp=sp, ble=ble, global_offset=len(self._global_log)
        )
        if sp.decided_idx > 0:
            # The storage factory handed us pre-decided state (e.g. a
            # benchmark pre-loading the log): the service layer's replicated
            # log must include it, silently (it is history, not news).
            self._global_log.extend(storage.get_entries(0, sp.decided_idx))
        self._instances[cluster.config_id] = inst
        self._current_cid = cluster.config_id
        self._migration = None
        self._pending_cluster = None
        if seed is not None and seed.pid == self.pid:
            sp.handle_leader(seed)
        if announce:
            for peer in cluster.peers_of(self.pid):
                self._send_service(peer, JoinComplete(cluster.config_id))
        if self._transition_buffer:
            pending, self._transition_buffer = self._transition_buffer, []
            sp.propose_batch(pending)
        self._pump()

    def _next_span_id(self) -> str:
        self._span_counter += 1
        return f"{self.pid}.{self._span_counter}"

    def _root_trace(self, entry: Any) -> TraceContext:
        """A fresh root context for a locally proposed entry. Client
        commands get the canonical ``c<cid>-<seq>`` id so their envelope
        hops and client-side span events share one trace."""
        span_id = self._next_span_id()
        return TraceContext(entry_trace_id(entry) or f"p{span_id}",
                            span_id=span_id)

    def _post(self, dst: int, env: Envelope) -> None:
        """Queue an outgoing envelope, stamping the active trace context.

        ``_active_trace`` is only ever set while tracing is enabled, so
        the untraced hot path pays one ``is None`` check.
        """
        if self._active_trace is not None and env.trace is None:
            env = replace(env, trace=self._active_trace)
        self._outbox.append((dst, env))

    def _send_service(self, dst: int, payload: Any) -> None:
        cid = self._current_cid if self._current_cid is not None else 0
        self._post(dst, Envelope(cid, COMPONENT_SERVICE, payload))

    def _pump(self) -> None:
        """Move data between components and fill the outbox.

        Repeats until a fixed point because a leader event can generate
        Prepare messages, deciding entries can surface a stop-sign, etc.
        """
        progressed = True
        while progressed:
            progressed = False
            for cid, inst in list(self._instances.items()):
                if inst.active:
                    for ballot in inst.ble.take_leader_events():
                        inst.sp.handle_leader(ballot)
                        progressed = True
                    for dst, msg in inst.ble.take_outbox():
                        self._post(dst, Envelope(cid, COMPONENT_BLE, msg))
                for dst, msg in inst.sp.take_outbox():
                    self._post(dst, Envelope(cid, COMPONENT_SP, msg))
                for local_idx, entry in inst.sp.take_decided():
                    progressed = True
                    global_idx = inst.global_offset + local_idx
                    if global_idx == len(self._global_log):
                        self._global_log.append(entry)
                        self._decided_out.append((global_idx, entry))
                        if is_stopsign(entry) and inst.active:
                            self._handle_stopsign(entry)
                    # else: already obtained via migration; nothing to do.

    # ------------------------------------------------------------------
    # internals: reconfiguration (service layer)
    # ------------------------------------------------------------------

    def _handle_stopsign(self, stopsign: StopSign) -> None:
        """The current configuration decided a stop-sign: transition."""
        inst = self._current_instance()
        assert inst is not None
        inst.active = False  # old BLE stops; old SP keeps syncing stragglers
        self.stats.reconfigurations += 1
        new_cluster = ClusterConfig(stopsign.config_id, stopsign.servers)
        if self._obs.enabled:
            self._obs.emit(StopSignDecided(
                pid=self.pid,
                config_id=inst.cluster.config_id,
                next_config_id=new_cluster.config_id,
                servers=new_cluster.servers,
            ))
        donors = tuple(p for p in inst.cluster.servers if p != self.pid)
        self._announce_msg = NewConfiguration(
            config_id=new_cluster.config_id,
            servers=new_cluster.servers,
            log_len=len(self._global_log),
            donors=donors + (self.pid,),
            metadata=stopsign.metadata,
        )
        self._announce_deadlines = {
            peer: self._now for peer in new_cluster.servers if peer != self.pid
        }
        if self.pid in new_cluster.servers:
            self._pending_cluster = new_cluster
            self._start_instance(new_cluster, self._now, announce=True)
        else:
            self._pending_cluster = new_cluster
            self._current_cid = None  # retired: donor only

    def _tick_announcements(self, now_ms: float) -> None:
        if self._announce_msg is None:
            return
        for peer, deadline in list(self._announce_deadlines.items()):
            if now_ms >= deadline:
                self._send_service(peer, self._announce_msg)
                self._announce_deadlines[peer] = (
                    now_ms + self._config.announce_period_ms
                )

    def _on_service(self, src: int, msg: Any, now_ms: float) -> None:
        if isinstance(msg, NewConfiguration):
            self._on_new_configuration(src, msg, now_ms)
        elif isinstance(msg, LogPullRequest):
            segment = serve_pull_request(self._global_log, msg)
            self._send_service(src, segment)
        elif isinstance(msg, LogSegment):
            if self._migration is not None:
                if self._obs.tracing:
                    self._obs.emit(MigrationSegmentReceived(
                        pid=self.pid, config_id=msg.config_id, donor=src,
                        from_idx=msg.from_idx, entries=len(msg.entries),
                    ))
                self._migration.on_segment(src, msg, now_ms)
                self._drain_migration(now_ms)
        elif isinstance(msg, JoinComplete):
            self._announce_deadlines.pop(src, None)
            if self._migration is not None and \
                    self._migration.config_id == msg.config_id:
                self._migration.add_donor(src)

    def _on_new_configuration(self, src: int, msg: NewConfiguration,
                              now_ms: float) -> None:
        if msg.config_id in self._instances:
            # Already started: confirm so the announcer stops retransmitting.
            self._send_service(src, JoinComplete(msg.config_id))
            return
        if self.pid not in msg.servers:
            return
        if self._migration is not None:
            if self._migration.config_id == msg.config_id:
                self._migration.add_donor(src)
            return
        cluster = ClusterConfig(msg.config_id, msg.servers)
        have = len(self._global_log)
        if have >= msg.log_len:
            self._pending_cluster = cluster
            self._start_instance(cluster, now_ms, announce=True)
            return
        donors = [p for p in msg.donors if p != self.pid] or [src]
        self._pending_cluster = cluster
        self._migration = MigrationPlan(
            config_id=msg.config_id,
            from_idx=have,
            to_idx=msg.log_len,
            donors=donors,
            strategy=self._config.migration_strategy,
            chunk_entries=self._config.migration_chunk_entries,
            retry_ms=self._config.migration_retry_ms,
        )
        self._migration_started_ms = now_ms
        self._migration.start(now_ms)
        self._drain_migration(now_ms)

    def _drain_migration(self, now_ms: float) -> None:
        migration = self._migration
        if migration is None:
            return
        for dst, req in migration.take_outbox():
            if self._obs.enabled and isinstance(req, LogPullRequest):
                self._obs.emit(MigrationDonorPicked(
                    pid=self.pid, config_id=req.config_id, donor=dst,
                    from_idx=req.from_idx, to_idx=req.to_idx,
                ))
            self._send_service(dst, req)
        if not migration.complete():
            return
        entries = migration.collected_entries()
        for entry in entries:
            self._global_log.append(entry)
            self._decided_out.append((len(self._global_log) - 1, entry))
        if self._obs.enabled:
            started = self._migration_started_ms
            duration = now_ms - started if started is not None else 0.0
            self._obs.emit(MigrationCompleted(
                pid=self.pid, config_id=migration.config_id,
                entries=len(entries), duration_ms=duration,
            ))
            self._obs.histogram("repro_migration_duration_ms").observe(duration)
        self._migration_started_ms = None
        assert self._pending_cluster is not None
        cluster = self._pending_cluster
        self._migration = None
        self._start_instance(cluster, now_ms, announce=True)
