"""Sequence Paxos — the log replication protocol of Omni-Paxos (paper §4).

Sequence Paxos replicates a gapless, strictly growing log and satisfies the
Sequence Consensus properties:

- **SC1 Validity** — decided logs contain only proposed commands.
- **SC2 Uniform Agreement** — any two decided logs are prefix-ordered.
- **SC3 Integrity** — a server's decided log only ever grows.

A round is led by the ballot elected in BLE and has two phases. In the
*Prepare* phase the new leader synchronizes with a majority: followers report
``(acc_rnd, log_idx, decided_idx)`` and ship the suffix the leader is
missing; the leader adopts the most updated log (highest ``acc_rnd``, then
longest) which is guaranteed to contain every chosen entry, then re-syncs all
promised followers with ``AcceptSync``. In the *Accept* phase the leader
pipelines new entries with ``AcceptDecide`` over FIFO links and decides an
index once a majority has accepted it.

Because leader election is fully decoupled (it only requires
quorum-connectivity, not log progress), the Prepare-phase synchronization is
what lets even a *trailing* server take over and still preserve SC1–SC3 —
the crux of surviving the constrained-election scenario.

This class is sans-io and is also reused by the VR baseline, which swaps BLE
for a view-change protocol exactly as the paper's evaluation does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CompactionError, ConfigError, NotLeaderError, StoppedError
from repro.obs.events import (
    EntryApplied,
    ProposalAppended,
    QuorumAccepted,
    RecoveryCompleted,
    RecoveryStarted,
    RoleChanged,
)
from repro.obs.registry import Instrumented
from repro.obs.spans import entry_trace_id
from repro.omni.ballot import Ballot, BOTTOM
from repro.omni.entry import SnapshotInstalled, StopSign, is_stopsign
from repro.omni.messages import (
    Accepted,
    AcceptDecide,
    AcceptSync,
    Decide,
    Prepare,
    PrepareReq,
    Promise,
    ProposalForward,
    Trim,
)
from repro.omni.storage import Storage


class Role(enum.Enum):
    LEADER = "leader"
    FOLLOWER = "follower"


class Phase(enum.Enum):
    PREPARE = "prepare"
    ACCEPT = "accept"
    RECOVER = "recover"
    NONE = "none"


@dataclass(frozen=True)
class SequencePaxosConfig:
    """Static configuration of one Sequence Paxos replica.

    ``config_id`` identifies the configuration this instance belongs to;
    instances of different configurations never exchange messages (the
    service layer enforces this via message envelopes).
    """

    pid: int
    peers: Tuple[int, ...]
    config_id: int = 0
    #: How often lost Prepare / AcceptSync exchanges are retried (driven by
    #: :meth:`SequencePaxos.tick`); only matters on lossy transports.
    resend_period_ms: float = 500.0
    #: Optional deterministic fold ``(entries, prev_state) -> state``.
    #: When set, :meth:`SequencePaxos.trim` may compact up to the *local*
    #: decided index (not just what every server has decided): stragglers
    #: below the compaction point are synchronized with the snapshot
    #: instead of the trimmed entries. Must be deterministic — every
    #: replica folds the same prefix to the same state.
    snapshotter: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.pid <= 0:
            raise ConfigError("server pids must be positive")
        if self.pid in self.peers:
            raise ConfigError("peers must not contain the server's own pid")
        if len(set(self.peers)) != len(self.peers):
            raise ConfigError("duplicate peer pids")

    @property
    def cluster_size(self) -> int:
        return len(self.peers) + 1

    @property
    def majority(self) -> int:
        return self.cluster_size // 2 + 1


@dataclass
class _PromiseMeta:
    """What the leader remembers about one follower's promise."""

    acc_rnd: Ballot
    log_idx: int
    decided_idx: int
    # The suffix the follower shipped; None for the leader's own entry
    # (its log is local and needs no copy).
    suffix: Optional[Tuple[Any, ...]]
    # Snapshot standing in for a compacted part of the suffix, if any.
    snapshot: Optional[Tuple[Any, int]] = None


@dataclass
class SequencePaxosStats:
    """Counters for the evaluation harness."""

    prepares_sent: int = 0
    accept_syncs_sent: int = 0
    proposals_rejected: int = 0
    rounds_led: int = 0


class SequencePaxos(Instrumented):
    """One Sequence Paxos replica (sans-io)."""

    def __init__(self, config: SequencePaxosConfig, storage: Storage):
        self._config = config
        self._storage = storage
        self._role = Role.FOLLOWER
        self._phase = Phase.NONE
        #: The round this server acts in: as leader it is our own ballot, as
        #: follower it is the round we last promised.
        self._current_round: Ballot = storage.get_promise()
        #: Best-known leader ballot (for proposal forwarding).
        self._leader_hint: Optional[Ballot] = None
        # Leader-only state.
        self._promises: Dict[int, _PromiseMeta] = {}
        self._las: Dict[int, int] = {}
        #: Last known decided index per follower (for trim validation).
        self._lds: Dict[int, int] = {}
        self._synced_peers: set = set()
        #: Per-follower AcceptDecide counters within a sync session.
        self._accept_seq: Dict[int, int] = {}
        #: Per-follower sync-session numbers: bumped on every AcceptSync so
        #: a reordered AcceptDecide from an older session is recognizable.
        self._accept_session: Dict[int, int] = {}
        #: Expected next AcceptDecide seq as a follower.
        self._expected_seq = 0
        #: Session of the last AcceptSync applied as a follower.
        self._expected_session = 0
        self._resync_requested = False
        self._next_retry_at: Optional[float] = None
        self._max_prom_acc_rnd: Ballot = BOTTOM
        self._max_prom_log_idx: int = 0
        #: Proposals waiting for an Accept-phase leader.
        self._buffer: List[Any] = []
        #: Whether the buffer holds a stop-sign (counts as stopped).
        self._buffered_ss = False
        self._outbox: List[Tuple[int, Any]] = []
        #: Index up to which decided entries have been drained by the caller.
        self._applied_idx = storage.get_decided_idx()
        #: Snapshot installed but not yet surfaced via take_decided.
        self._pending_snapshot: Optional[Tuple[int, SnapshotInstalled]] = None
        #: Index of a stop-sign in the local log, if any.
        self._ss_idx: Optional[int] = self._find_stopsign()
        #: Tracing-only: fan-out times of in-flight batches awaiting a
        #: quorum, as ``(log_idx, at_ms)`` — populated only when
        #: ``self._obs.tracing`` is on (bounded by the pipeline depth).
        self._trace_fanout: List[Tuple[int, float]] = []
        #: Tracing-only: ``(started_ms, reason)`` of an open recovery.
        self._trace_recovery: Optional[Tuple[float, str]] = None
        self.stats = SequencePaxosStats()

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------

    @property
    def config(self) -> SequencePaxosConfig:
        return self._config

    @property
    def pid(self) -> int:
        return self._config.pid

    @property
    def role(self) -> Role:
        return self._role

    @property
    def phase(self) -> Phase:
        return self._phase

    @property
    def is_leader(self) -> bool:
        return self._role is Role.LEADER

    @property
    def current_round(self) -> Ballot:
        return self._current_round

    @property
    def leader_pid(self) -> Optional[int]:
        """The pid of the best-known leader, or None."""
        if self.is_leader:
            return self.pid
        if self._leader_hint is not None:
            return self._leader_hint.pid
        return None

    @property
    def decided_idx(self) -> int:
        return self._storage.get_decided_idx()

    @property
    def log_len(self) -> int:
        return self._storage.log_len()

    @property
    def storage(self) -> Storage:
        return self._storage

    @property
    def outbox_depth(self) -> int:
        """Messages staged for the transport but not yet taken — the
        leader's fan-out backlog when replication outruns the flush
        cadence."""
        return len(self._outbox)

    @property
    def pending_proposals(self) -> int:
        """Proposals buffered while waiting for an Accept-phase leader
        (admission backlog; drains on promotion or forward)."""
        return len(self._buffer)

    def stopped(self) -> bool:
        """True when a stop-sign is in the local log or buffered for it
        (no further proposals are admitted either way)."""
        return self._ss_idx is not None or self._buffered_ss

    def stopsign_decided(self) -> Optional[StopSign]:
        """The decided stop-sign, or None while the configuration is live."""
        if self._ss_idx is not None and self.decided_idx > self._ss_idx:
            return self._storage.get_entry(self._ss_idx)
        return None

    def read_decided(self, from_idx: int = 0) -> Tuple[Any, ...]:
        """A snapshot of the decided prefix starting at ``from_idx``.

        Decided entries can never be retracted, so this read is stable and
        is what the service layer serves to joining servers during log
        migration — even before this server has seen a stop-sign.
        """
        return self._storage.get_entries(from_idx, self.decided_idx)

    # ------------------------------------------------------------------
    # driving: leader events, messages, proposals
    # ------------------------------------------------------------------

    def _set_role(self, role: Role) -> None:
        """Change role, emitting a :class:`RoleChanged` event on a flip."""
        if role is self._role:
            return
        self._role = role
        if self._obs.enabled:
            self._obs.emit(RoleChanged(pid=self.pid, role=role.value,
                                       protocol="sp"))

    def handle_leader(self, ballot: Ballot) -> None:
        """React to a leader event from BLE (or the VR view-change layer)."""
        if ballot.pid == self.pid:
            if ballot > self._storage.get_promise():
                self._become_leader(ballot)
        else:
            self._leader_hint = ballot
            if self.is_leader and ballot > self._current_round:
                # A higher round exists; revert to follower and wait for its
                # Prepare (paper: "If the leader detects a higher round, it
                # reverts back to being a follower").
                self._set_role(Role.FOLLOWER)
                self._phase = Phase.NONE
            self._forward_buffered()

    def on_message(self, src: int, msg: Any) -> None:
        """Dispatch one incoming protocol message from peer ``src``."""
        if self._phase is Phase.RECOVER and not isinstance(msg, Prepare):
            return  # in recovery only Prepare (or a leader event) helps us
        if isinstance(msg, Prepare):
            self._on_prepare(src, msg)
        elif isinstance(msg, Promise):
            self._on_promise(src, msg)
        elif isinstance(msg, AcceptSync):
            self._on_accept_sync(src, msg)
        elif isinstance(msg, AcceptDecide):
            self._on_accept_decide(src, msg)
        elif isinstance(msg, Accepted):
            self._on_accepted(src, msg)
        elif isinstance(msg, Decide):
            self._on_decide(src, msg)
        elif isinstance(msg, PrepareReq):
            self._on_prepare_req(src)
        elif isinstance(msg, ProposalForward):
            self._on_proposal_forward(msg)
        elif isinstance(msg, Trim):
            self._on_trim(msg)

    def propose(self, entry: Any) -> None:
        """Propose one entry for replication.

        On the Accept-phase leader the entry is appended and pipelined
        immediately; otherwise it is buffered or forwarded to the leader.
        Raises :class:`StoppedError` once a stop-sign is in the log.
        """
        self.propose_batch([entry])

    def propose_batch(self, entries: Sequence[Any]) -> None:
        """Propose several entries at once (single AcceptDecide message)."""
        if self.stopped():
            self.stats.proposals_rejected += len(entries)
            raise StoppedError(
                f"configuration {self._config.config_id} is stopped by a stop-sign"
            )
        if self.is_leader and self._phase is Phase.ACCEPT:
            self._append_and_replicate(entries)
        elif self.is_leader and self._phase is Phase.PREPARE:
            self._buffer_entries(entries)
        else:
            self._buffer_entries(entries)
            self._forward_buffered()

    def propose_reconfiguration(self, servers: Sequence[int],
                                metadata: Optional[bytes] = None) -> None:
        """Propose a stop-sign that moves the cluster to ``servers``.

        The stop-sign is replicated and decided like any other entry; once it
        is in the local log no further proposals are admitted in this
        configuration (paper section 6).
        """
        if len(set(servers)) != len(servers) or not servers:
            raise ConfigError("new configuration must be a non-empty set of pids")
        stopsign = StopSign(
            config_id=self._config.config_id + 1,
            servers=tuple(servers),
            metadata=metadata,
        )
        self.propose(stopsign)

    def take_outbox(self) -> List[Tuple[int, Any]]:
        """Drain pending outgoing ``(dst, message)`` pairs."""
        out, self._outbox = self._outbox, []
        return out

    def tick(self, now_ms: float) -> None:
        """Drive loss-recovery retries (no-op on perfect links).

        - An Accept-phase leader re-Prepares peers that never promised
          (their Prepare may have been lost).
        - A follower stuck in the Prepare phase re-requests a Prepare from
          its leader (its Promise or the AcceptSync may have been lost).
        - A recovering server re-broadcasts PrepareReq.
        """
        if self._next_retry_at is None:
            self._next_retry_at = now_ms + self._config.resend_period_ms
            return
        if now_ms < self._next_retry_at:
            return
        self._next_retry_at = now_ms + self._config.resend_period_ms
        if self.is_leader and self._phase is Phase.ACCEPT:
            for peer in self._config.peers:
                if peer not in self._promises:
                    self._send_prepare(peer)
        elif self._phase is Phase.PREPARE and not self.is_leader \
                and self._leader_hint is not None:
            self._send(self._leader_hint.pid, PrepareReq())
        elif self._phase is Phase.RECOVER:
            for peer in self._config.peers:
                self._send(peer, PrepareReq())

    def take_decided(self) -> List[Tuple[int, Any]]:
        """Drain newly decided ``(index, entry)`` pairs since the last call.

        After a snapshot installation the first drained item is
        ``(covers_idx, SnapshotInstalled(state))`` — the state standing in
        for entries ``[0, covers_idx)`` — followed by regular entries.
        """
        out: List[Tuple[int, Any]] = []
        if self._pending_snapshot is not None:
            covers, marker = self._pending_snapshot
            self._pending_snapshot = None
            if covers > self._applied_idx:
                out.append((covers, marker))
                self._applied_idx = covers
        decided = self._storage.get_decided_idx()
        if decided > self._applied_idx:
            entries = self._storage.get_entries(self._applied_idx, decided)
            out.extend(enumerate(entries, start=self._applied_idx))
            self._applied_idx = decided
        if out and self._obs_on:
            self._obs.counter("repro_decided_entries_total",
                              pid=self.pid).inc(len(out))
            if self._obs.tracing:
                self._obs.emit(EntryApplied(
                    pid=self.pid, log_idx=self._applied_idx, count=len(out)))
        return out

    # ------------------------------------------------------------------
    # failure recovery and session drops (paper section 4.1.3)
    # ------------------------------------------------------------------

    def fail_recover(self) -> None:
        """Enter recovery after a crash-restart: ask peers for a Prepare."""
        self._set_role(Role.FOLLOWER)
        self._phase = Phase.RECOVER
        self._current_round = self._storage.get_promise()
        self._trace_recovery_start("crash")
        for peer in self._config.peers:
            self._send(peer, PrepareReq())

    def reconnected(self, peer: int) -> None:
        """A link session to ``peer`` was re-established.

        Either side might have missed a leader change while the session was
        down, so ask the peer for a Prepare if it happens to be the leader;
        if *we* are the leader, re-Prepare the peer.
        """
        if self.is_leader:
            self._send_prepare(peer)
        else:
            # Only a restored session *to the leader* starts a resync; a
            # follower-follower reconnect sends the (ignored) PrepareReq
            # but involves no recovery to span.
            if self.leader_pid == peer:
                self._trace_recovery_start("session")
            self._send(peer, PrepareReq())

    def _trace_recovery_start(self, reason: str) -> None:
        """Tracing-only: open a recovery span (PrepareReq out)."""
        if not self._obs.tracing or self._trace_recovery is not None:
            return
        self._trace_recovery = (self._obs.now_ms(), reason)
        self._obs.emit(RecoveryStarted(pid=self.pid, reason=reason))

    def _trace_recovery_end(self) -> None:
        """Tracing-only: close an open recovery span (resynchronized)."""
        if self._trace_recovery is None:
            return
        started_ms, _reason = self._trace_recovery
        self._trace_recovery = None
        if not self._obs.tracing:
            return
        self._obs.emit(RecoveryCompleted(
            pid=self.pid, log_idx=self._storage.log_len()))
        self._obs.histogram("repro_recovery_duration_ms").observe(
            self._obs.now_ms() - started_ms)

    # ------------------------------------------------------------------
    # internals: outbound helpers
    # ------------------------------------------------------------------

    def _send(self, dst: int, msg: Any) -> None:
        self._outbox.append((dst, msg))

    def _send_prepare(self, peer: int) -> None:
        self.stats.prepares_sent += 1
        self._send(peer, Prepare(
            n=self._current_round,
            acc_rnd=self._storage.get_accepted_round(),
            log_idx=self._storage.log_len(),
            decided_idx=self._storage.get_decided_idx(),
        ))

    def _buffer_entries(self, entries: Sequence[Any]) -> None:
        self._buffer.extend(entries)
        if not self._buffered_ss and any(is_stopsign(e) for e in entries):
            self._buffered_ss = True

    def _take_buffer(self) -> List[Any]:
        pending, self._buffer = self._buffer, []
        self._buffered_ss = False
        return pending

    @staticmethod
    def _clip_at_stopsign(entries: Sequence[Any]) -> Tuple[List[Any], int]:
        """Keep entries up to and including the first stop-sign; anything
        after it can never be decided in this configuration (paper §6)."""
        for i, entry in enumerate(entries):
            if is_stopsign(entry):
                return list(entries[:i + 1]), len(entries) - (i + 1)
        return list(entries), 0

    def _forward_buffered(self) -> None:
        """Forward buffered proposals to the best-known leader."""
        if not self._buffer or self._leader_hint is None:
            return
        if self._leader_hint.pid == self.pid:
            return  # we are (still) the leader; the buffer drains locally
        entries = tuple(self._take_buffer())
        self._send(self._leader_hint.pid, ProposalForward(entries))

    # ------------------------------------------------------------------
    # internals: leader side
    # ------------------------------------------------------------------

    def _become_leader(self, ballot: Ballot) -> None:
        self.stats.rounds_led += 1
        self._set_role(Role.LEADER)
        self._phase = Phase.PREPARE
        self._current_round = ballot
        self._leader_hint = ballot
        self._storage.set_promise(ballot)
        self._promises = {
            self.pid: _PromiseMeta(
                acc_rnd=self._storage.get_accepted_round(),
                log_idx=self._storage.log_len(),
                decided_idx=self._storage.get_decided_idx(),
                suffix=None,
            )
        }
        self._las = {}
        self._lds = {}
        self._synced_peers = set()
        self._accept_seq = {}
        self._accept_session = {}
        self._trace_fanout = []  # stale fan-out times from an older tenure
        for peer in self._config.peers:
            self._send_prepare(peer)
        if len(self._promises) >= self._config.majority:
            # Single-server configuration: we are our own majority.
            self._handle_majority_promises()

    def _on_promise(self, src: int, msg: Promise) -> None:
        if not self.is_leader or msg.n != self._current_round:
            return
        meta = _PromiseMeta(
            acc_rnd=msg.acc_rnd,
            log_idx=msg.log_idx,
            decided_idx=msg.decided_idx,
            suffix=msg.suffix,
            snapshot=msg.snapshot,
        )
        if self._phase is Phase.PREPARE:
            self._promises[src] = meta
            if len(self._promises) >= self._config.majority:
                self._handle_majority_promises()
        elif self._phase is Phase.ACCEPT:
            # A straggler promised after the Prepare phase completed
            # (paper section 4.1.2): synchronize it with our current log.
            self._promises[src] = meta
            self._accept_sync_follower(src, meta)

    def _handle_majority_promises(self) -> None:
        """Adopt the most updated log among the promised majority and
        synchronize every promised follower with it."""
        my_meta = self._promises[self.pid]
        # Pick the maximum (acc_rnd, log_idx); prefer ourselves on ties so
        # no copy is needed.
        best_pid = self.pid
        best_key = (my_meta.acc_rnd, my_meta.log_idx)
        for pid, meta in self._promises.items():
            key = (meta.acc_rnd, meta.log_idx)
            if key > best_key:
                best_pid, best_key = pid, key
        best = self._promises[best_pid]
        if best_pid != self.pid:
            if best.snapshot is not None:
                # The promiser compacted part of what we lack: adopt its
                # snapshot in place of the missing prefix, then the suffix.
                self._install_snapshot(best.snapshot)
                self._truncate(best.snapshot[1])
                self._append(best.suffix)
            elif best.acc_rnd > my_meta.acc_rnd:
                # The shipped suffix starts at *our* decided index: drop our
                # non-chosen tail and adopt it.
                self._truncate(my_meta.decided_idx)
                self._append(best.suffix)
            elif best.suffix:
                # Same accepted round: the suffix extends our log from our
                # own log_idx.
                self._append(best.suffix)
        self._max_prom_acc_rnd = best.acc_rnd
        self._max_prom_log_idx = best_key[1] if best_pid != self.pid else my_meta.log_idx
        self._storage.set_accepted_round(self._current_round)
        # Adopt the furthest decided index among the majority: those entries
        # are chosen, hence a prefix of the adopted log.
        max_decided = max(meta.decided_idx for meta in self._promises.values())
        if max_decided > self._storage.get_decided_idx():
            self._storage.set_decided_idx(min(max_decided, self._storage.log_len()))
        # Append proposals buffered while preparing (unless a stop-sign got
        # adopted with the new log), clipping at any buffered stop-sign so
        # nothing ever follows one in the log.
        if self._buffer:
            pending = self._take_buffer()
            if self._ss_idx is not None:
                self.stats.proposals_rejected += len(pending)
            else:
                kept, rejected = self._clip_at_stopsign(pending)
                self.stats.proposals_rejected += rejected
                self._append(kept)
        self._phase = Phase.ACCEPT
        # A recovering server that won the election resynchronized itself
        # through the majority's promises — its recovery is over too.
        self._trace_recovery_end()
        self._las = {self.pid: self._storage.log_len()}
        for pid, meta in self._promises.items():
            if pid != self.pid:
                self._accept_sync_follower(pid, meta)

    def _sync_idx_for(self, meta: _PromiseMeta) -> int:
        """From which index must a promised follower be synchronized?

        - Same ``acc_rnd`` as the adopted log (or as our own current round):
          the follower's log agrees with ours up to
          ``min(follower_log_idx, agreement_length)``; sync from there.
        - Older ``acc_rnd``: only its decided prefix is guaranteed to agree;
          sync from its decided index.
        """
        if meta.acc_rnd == self._current_round:
            # Already accepted in this round (a re-promise after a session
            # drop): its log is a prefix of ours.
            return min(meta.log_idx, self._storage.log_len())
        if meta.acc_rnd == self._max_prom_acc_rnd:
            return min(meta.log_idx, self._max_prom_log_idx)
        return meta.decided_idx

    def _accept_sync_follower(self, pid: int, meta: _PromiseMeta) -> None:
        sync_idx = self._sync_idx_for(meta)
        snapshot = None
        if sync_idx < self._storage.compacted_idx():
            # The follower needs entries we already compacted: ship our
            # snapshot in their place (requires a configured snapshotter —
            # without one, trim never outruns any follower's decided index).
            snapshot = self._storage.get_snapshot()
            sync_idx = self._storage.compacted_idx()
        self.stats.accept_syncs_sent += 1
        self._synced_peers.add(pid)
        self._accept_seq[pid] = 0  # AcceptSync restarts the seq counter...
        session = self._accept_session.get(pid, 0) + 1
        self._accept_session[pid] = session  # ...in a fresh, numbered session
        self._send(pid, AcceptSync(
            n=self._current_round,
            suffix=self._storage.get_suffix(sync_idx),
            sync_idx=sync_idx,
            decided_idx=self._storage.get_decided_idx(),
            snapshot=snapshot,
            session=session,
        ))

    def _append_and_replicate(self, entries: Sequence[Any]) -> None:
        # The whole-batch replication hot path: one append, one AcceptDecide
        # per synced peer. Lookups are hoisted out of the fan-out loop; the
        # peer iteration order (set order) is part of the deterministic
        # behaviour and must not change.
        entries, rejected = self._clip_at_stopsign(entries)
        self.stats.proposals_rejected += rejected
        if not entries:
            return
        storage = self._storage
        start_idx = storage.log_len()
        self._append(entries)
        log_len = storage.log_len()
        self._las[self.pid] = log_len
        if self._obs.tracing:
            self._trace_fanout.append((log_len, self._obs.now_ms()))
            self._obs.emit(ProposalAppended(
                pid=self.pid, from_idx=start_idx, to_idx=log_len,
                protocol="sp", trace_id=entry_trace_id(entries[0]),
            ))
        decided_idx = storage.get_decided_idx()
        batch = tuple(entries)
        round_ = self._current_round
        accept_seq = self._accept_seq
        session_of = self._accept_session.get
        outbox = self._outbox
        for pid in self._synced_peers:
            seq = accept_seq.get(pid, 0) + 1
            accept_seq[pid] = seq
            outbox.append((pid, AcceptDecide(
                n=round_,
                entries=batch,
                decided_idx=decided_idx,
                seq=seq,
                session=session_of(pid, 1),
            )))
        self._maybe_decide(log_len)

    def _on_accepted(self, src: int, msg: Accepted) -> None:
        if not self.is_leader or msg.n != self._current_round:
            return
        if self._phase is not Phase.ACCEPT:
            return
        if msg.decided_idx > self._lds.get(src, 0):
            self._lds[src] = msg.decided_idx
        previous = self._las.get(src, 0)
        if msg.log_idx > previous:
            self._las[src] = msg.log_idx
            self._maybe_decide(msg.log_idx)

    def _maybe_decide(self, candidate_idx: int) -> None:
        """Decide ``candidate_idx`` if a majority has accepted that far."""
        if candidate_idx <= self._storage.get_decided_idx():
            return
        accepted = sum(1 for idx in self._las.values() if idx >= candidate_idx)
        if accepted < self._config.majority:
            return
        self._storage.set_decided_idx(candidate_idx)
        if self._obs.tracing:
            self._obs.emit(QuorumAccepted(
                pid=self.pid, log_idx=candidate_idx, protocol="sp"))
            now = self._obs.now_ms()
            while self._trace_fanout and self._trace_fanout[0][0] <= candidate_idx:
                _, fanned_at = self._trace_fanout.pop(0)
                self._obs.histogram("repro_commit_phase_ms",
                                    phase="replicate").observe(now - fanned_at)
        msg = Decide(n=self._current_round, decided_idx=candidate_idx)
        for pid in self._synced_peers:
            self._send(pid, msg)

    def _on_prepare_req(self, src: int) -> None:
        if self.is_leader:
            self._send_prepare(src)

    # ------------------------------------------------------------------
    # log compaction (trim)
    # ------------------------------------------------------------------

    @property
    def compacted_idx(self) -> int:
        """First log index still present in storage."""
        return self._storage.compacted_idx()

    def trim(self, idx: Optional[int] = None) -> int:
        """Reclaim the log prefix below ``idx`` cluster-wide (leader only).

        Safety requires that *every* server in the configuration has
        decided past ``idx`` — otherwise a straggler could never be
        synchronized again. The leader validates this against the decided
        indices reported in Accepted messages; with ``idx=None`` it trims
        as far as currently safe. Returns the trimmed index.

        Raises :class:`NotLeaderError` on a non-leader and
        :class:`CompactionError` when the prefix is not yet decided
        everywhere (e.g. a partitioned follower has not reported).
        """
        if not self.is_leader or self._phase is not Phase.ACCEPT:
            raise NotLeaderError("only an Accept-phase leader can trim")
        ss_bound = self._ss_idx if self._ss_idx is not None else None
        if self._config.snapshotter is not None:
            # With a snapshotter, stragglers below the compaction point can
            # be synchronized with the snapshot, so the local decided index
            # is the only bound.
            safe = self._storage.get_decided_idx()
        else:
            known = [self._lds.get(peer, 0) for peer in self._config.peers]
            known.append(self._storage.get_decided_idx())
            safe = min(known)
        if ss_bound is not None:
            # Never compact the stop-sign: it is the segment boundary the
            # service layer (and recovery) relies on.
            safe = min(safe, ss_bound)
        if idx is None:
            idx = safe
        if idx > safe:
            raise CompactionError(
                f"cannot trim to {idx}: only decided everywhere up to {safe}"
            )
        if idx > self._storage.compacted_idx():
            self._compact_local(idx)
            for peer in self._config.peers:
                self._send(peer, Trim(n=self._current_round, trimmed_idx=idx))
        return idx

    def _compact_local(self, idx: int) -> None:
        """Fold the prefix into the snapshot (if configured) and compact."""
        if self._config.snapshotter is not None:
            prev = self._storage.get_snapshot()
            prev_state = prev[0] if prev is not None else None
            entries = self._storage.get_entries(
                self._storage.compacted_idx(), idx
            )
            state = self._config.snapshotter(entries, prev_state)
            self._storage.set_snapshot(state, idx)
        self._storage.compact_prefix(idx)

    def _on_trim(self, msg: Trim) -> None:
        if msg.n != self._storage.get_promise():
            return
        # The leader guarantees the prefix is recoverable (decided
        # everywhere, or snapshot-backed); clamp to the locally decided
        # prefix defensively (e.g. a lost Decide).
        idx = min(msg.trimmed_idx, self._storage.get_decided_idx())
        if idx > self._storage.compacted_idx():
            self._compact_local(idx)

    def _on_proposal_forward(self, msg: ProposalForward) -> None:
        if self.stopped():
            self.stats.proposals_rejected += len(msg.entries)
            return  # the client's retry path handles re-proposing in c_{i+1}
        if self.is_leader and self._phase is Phase.ACCEPT:
            self._append_and_replicate(msg.entries)
        elif self.is_leader and self._phase is Phase.PREPARE:
            self._buffer_entries(msg.entries)
        else:
            # We are not the leader (anymore): forward along to our hint.
            self._buffer_entries(msg.entries)
            self._forward_buffered()

    # ------------------------------------------------------------------
    # internals: follower side
    # ------------------------------------------------------------------

    def _on_prepare(self, src: int, msg: Prepare) -> None:
        if msg.n < self._storage.get_promise():
            return  # obsolete round; no NACK — silence avoids leader gossip
        if msg.n == self._storage.get_promise() and self.is_leader:
            return  # our own round echoed back; ignore
        if msg.n > self._storage.get_promise():
            # A new leader tenure numbers its sync sessions from 1 again.
            self._expected_session = 0
        self._storage.set_promise(msg.n)
        self._set_role(Role.FOLLOWER)
        self._phase = Phase.PREPARE
        self._current_round = msg.n
        self._leader_hint = msg.n
        self._resync_requested = False
        my_acc_rnd = self._storage.get_accepted_round()
        if my_acc_rnd > msg.acc_rnd:
            # We are more updated: ship everything past the leader's decided
            # index so it can replace its non-chosen tail.
            start: Optional[int] = msg.decided_idx
        elif my_acc_rnd == msg.acc_rnd:
            # Same round: logs are prefix-ordered; ship what the leader lacks.
            start = msg.log_idx
        else:
            start = None
        snapshot = None
        if start is not None and start < self._storage.compacted_idx():
            # Part of what the leader needs was compacted here: our snapshot
            # stands in for the missing prefix.
            snapshot = self._storage.get_snapshot()
            start = self._storage.compacted_idx()
        suffix = self._storage.get_suffix(start) if start is not None else ()
        self._send(src, Promise(
            n=msg.n,
            acc_rnd=my_acc_rnd,
            suffix=suffix,
            log_idx=self._storage.log_len(),
            decided_idx=self._storage.get_decided_idx(),
            snapshot=snapshot,
        ))
        self._forward_buffered()

    def _on_accept_sync(self, src: int, msg: AcceptSync) -> None:
        if msg.n != self._storage.get_promise() or self.is_leader:
            return
        if self._phase not in (Phase.PREPARE, Phase.ACCEPT):
            return
        if msg.session <= self._expected_session:
            # A duplicated (or reordered-behind) copy of a sync we already
            # applied: re-applying would roll the log back to an old sync
            # point and desynchronize the seq counters.
            return
        # An Accept-phase follower can receive a *re*-sync when overlapping
        # Prepare/Promise exchanges raced (e.g. a session drop and a
        # PrepareReq both triggered one). The leader opened a fresh numbered
        # session when it sent this message, so it must be applied —
        # dropping it would desynchronize the counters and make every later
        # batch look stale. The sync point may lie below our decided prefix
        # (the promise it answers was stale); the suffix covers that prefix
        # with identical chosen entries, so clip.
        sync_idx = msg.sync_idx
        suffix = msg.suffix
        if msg.snapshot is not None:
            self._install_snapshot(msg.snapshot)
        decided = self._storage.get_decided_idx()
        if sync_idx < decided:
            skip = decided - sync_idx
            if skip > len(suffix):
                return  # entirely below our decided prefix: obsolete
            suffix = suffix[skip:]
            sync_idx = decided
        self._truncate(sync_idx)
        self._append(suffix)
        self._storage.set_accepted_round(msg.n)
        self._phase = Phase.ACCEPT
        self._expected_session = msg.session
        self._expected_seq = 0
        self._resync_requested = False
        self._trace_recovery_end()
        if msg.decided_idx > self._storage.get_decided_idx():
            self._storage.set_decided_idx(min(msg.decided_idx, self._storage.log_len()))
        self._send(src, Accepted(n=msg.n, log_idx=self._storage.log_len(),
                                 decided_idx=self._storage.get_decided_idx()))

    def _on_accept_decide(self, src: int, msg: AcceptDecide) -> None:
        if msg.n != self._storage.get_promise() or self._phase is not Phase.ACCEPT:
            return
        if self.is_leader:
            return
        if msg.session != self._expected_session:
            if msg.session > self._expected_session \
                    and not self._resync_requested:
                # The AcceptSync that opened this session never arrived:
                # resynchronize (the leader answers with a fresh Prepare).
                self._resync_requested = True
                self._send(src, PrepareReq())
            return  # an older session's straggler (reordered/duplicated)
        if msg.seq != self._expected_seq + 1:
            if msg.seq > self._expected_seq + 1 and not self._resync_requested:
                # A preceding AcceptDecide was lost (non-FIFO transport):
                # appending would corrupt the log, so resynchronize instead
                # (the leader answers PrepareReq with a fresh Prepare).
                self._resync_requested = True
                self._send(src, PrepareReq())
            return  # duplicates / stale messages are ignored either way
        self._expected_seq = msg.seq
        storage = self._storage
        self._append(msg.entries)
        log_len = storage.log_len()
        decided = storage.get_decided_idx()
        if msg.decided_idx > decided:
            decided = min(msg.decided_idx, log_len)
            storage.set_decided_idx(decided)
        self._outbox.append((src, Accepted(n=msg.n, log_idx=log_len,
                                           decided_idx=decided)))

    def _on_decide(self, src: int, msg: Decide) -> None:
        if msg.n != self._storage.get_promise() or self._phase is not Phase.ACCEPT:
            return
        if msg.decided_idx > self._storage.get_decided_idx():
            self._storage.set_decided_idx(min(msg.decided_idx, self._storage.log_len()))
            # Acknowledge the new decided watermark (one ack per Decide,
            # i.e. per batch): this is what lets the leader validate that a
            # log prefix is decided everywhere before trimming it.
            self._send(src, Accepted(
                n=msg.n,
                log_idx=self._storage.log_len(),
                decided_idx=self._storage.get_decided_idx(),
            ))

    # ------------------------------------------------------------------
    # internals: log bookkeeping (stop-sign tracking)
    # ------------------------------------------------------------------

    def _find_stopsign(self) -> Optional[int]:
        length = self._storage.log_len()
        if length <= self._storage.compacted_idx():
            # Fully compacted log (e.g. recovery right after a trim): the
            # final entry is not readable, and trim never compacts a
            # stop-sign, so there is none.
            return None
        if is_stopsign(self._storage.get_entry(length - 1)):
            return length - 1
        return None

    def _append(self, entries: Sequence[Any]) -> None:
        if not entries:
            return
        new_len = self._storage.append_entries(entries)
        # A stop-sign can only ever sit at the end of a log: no leader
        # appends past one, so checking the last entry of the batch suffices.
        if is_stopsign(entries[-1]):
            self._ss_idx = new_len - 1

    def _install_snapshot(self, snapshot: Tuple[Any, int]) -> None:
        """Adopt a snapshot received in a Promise or AcceptSync."""
        state, covers = snapshot
        self._storage.install_snapshot(state, covers)
        self._pending_snapshot = (covers, SnapshotInstalled(state))
        if self._ss_idx is not None and self._ss_idx < covers:
            self._ss_idx = None  # folded into the snapshot

    def _truncate(self, from_idx: int) -> None:
        if from_idx >= self._storage.log_len():
            return
        self._storage.truncate_suffix(from_idx)
        if self._ss_idx is not None and self._ss_idx >= from_idx:
            self._ss_idx = None
