"""Executable protocol invariants (paper section 4.2 and Appendix A).

These functions check, over a set of live :class:`SequencePaxos` replicas
(or OmniPaxosServers), the global invariants the paper's proof relies on.
They are used by the property-based test suite after every chaos step and
are handy in debugging sessions:

- **SC2 / prefix order** — decided logs across replicas are prefix-ordered.
- **P1** — a replica's accepted round never exceeds its promised round.
- **Single leader per round** — ballots are unique (LE3), so at most one
  replica may ever act as leader of a given round.
- **Decided within log** — the decided index never exceeds the log length.
- **Stop-sign position** — a stop-sign only ever sits at the end of a log.

Each check raises :class:`InvariantViolation` with a precise description,
or returns quietly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import ReproError
from repro.omni.entry import is_stopsign
from repro.omni.sequence_paxos import SequencePaxos


class InvariantViolation(ReproError):
    """A cross-replica protocol invariant does not hold."""


def _as_sequence_paxos(replicas: Iterable) -> List[SequencePaxos]:
    out = []
    for replica in replicas:
        if isinstance(replica, SequencePaxos):
            out.append(replica)
        else:
            sp = getattr(replica, "sp_of_current", None)
            if sp is not None:
                inst = sp()
                if inst is not None:
                    out.append(inst)
    return out


def check_decided_prefix_order(replicas: Iterable) -> None:
    """SC2: for any two replicas, one decided log is a prefix of the other.

    Compacted replicas are compared on the overlap that is still readable.
    """
    nodes = _as_sequence_paxos(replicas)
    views = []
    for node in nodes:
        lo = node.storage.compacted_idx()
        hi = node.decided_idx
        views.append((lo, node.storage.get_entries(lo, hi)))
    for i, (lo_a, log_a) in enumerate(views):
        for lo_b, log_b in views[i + 1:]:
            lo = max(lo_a, lo_b)
            a = log_a[lo - lo_a:]
            b = log_b[lo - lo_b:]
            overlap = min(len(a), len(b))
            if a[:overlap] != b[:overlap]:
                raise InvariantViolation(
                    f"decided logs disagree in [{lo}, {lo + overlap})"
                )


def check_promise_dominates_accepted(replicas: Iterable) -> None:
    """P1: a replica only accepts in rounds it has promised."""
    for node in _as_sequence_paxos(replicas):
        promised = node.storage.get_promise()
        accepted = node.storage.get_accepted_round()
        if accepted > promised:
            raise InvariantViolation(
                f"server {node.pid}: accepted round {accepted} exceeds "
                f"promise {promised}"
            )


def check_single_leader_per_round(replicas: Iterable) -> None:
    """LE3 consequence: two replicas never lead the same round."""
    leaders: Dict = {}
    for node in _as_sequence_paxos(replicas):
        if node.is_leader:
            round_n = node.current_round
            if round_n in leaders and leaders[round_n] != node.pid:
                raise InvariantViolation(
                    f"round {round_n} led by both {leaders[round_n]} "
                    f"and {node.pid}"
                )
            leaders[round_n] = node.pid
            if round_n.pid != node.pid:
                raise InvariantViolation(
                    f"server {node.pid} leads a round owned by {round_n.pid}"
                )


def check_decided_within_log(replicas: Iterable) -> None:
    """A decided index never runs past the log."""
    for node in _as_sequence_paxos(replicas):
        if node.decided_idx > node.log_len:
            raise InvariantViolation(
                f"server {node.pid}: decided {node.decided_idx} beyond "
                f"log length {node.log_len}"
            )


def check_stopsign_terminal(replicas: Iterable) -> None:
    """A stop-sign, if present, is the last entry of the log."""
    for node in _as_sequence_paxos(replicas):
        lo = node.storage.compacted_idx()
        entries = node.storage.get_entries(lo, node.log_len)
        for offset, entry in enumerate(entries[:-1]):
            if is_stopsign(entry):
                raise InvariantViolation(
                    f"server {node.pid}: stop-sign at {lo + offset} is not "
                    f"the final log entry"
                )


ALL_CHECKS = (
    check_decided_prefix_order,
    check_promise_dominates_accepted,
    check_single_leader_per_round,
    check_decided_within_log,
    check_stopsign_terminal,
)


def check_all(replicas: Iterable) -> None:
    """Run every invariant check; raises on the first violation."""
    replicas = list(replicas)
    for check in ALL_CHECKS:
        check(replicas)


class MonotonicityTracker:
    """Stateful invariants a single snapshot cannot see.

    :func:`check_all` inspects one instant; it cannot tell that a server's
    promise went *backwards* between two checks (LE3 ballot monotonicity),
    that a decided index regressed (fail-recovery: decided state is
    persistent), or that a round was led by two different servers at
    *different* times. Feed every snapshot of a run through
    :meth:`observe`; it raises :class:`InvariantViolation` on regression.

    A deliberately *wiped* restart (disk replaced) is allowed to regress —
    call :meth:`forget` for that server; the cross-time round-to-leader
    history is kept, since LE3 must hold across incarnations.
    """

    def __init__(self) -> None:
        self._promise: Dict[int, object] = {}
        self._decided: Dict[int, int] = {}
        self._round_leader: Dict[object, int] = {}

    def forget(self, pid: int) -> None:
        """Drop per-server monotonicity state after a wiped restart."""
        self._promise.pop(pid, None)
        self._decided.pop(pid, None)

    def observe(self, replicas: Iterable) -> None:
        """Check one snapshot against everything seen before it."""
        for node in _as_sequence_paxos(replicas):
            promised = node.storage.get_promise()
            prev = self._promise.get(node.pid)
            if prev is not None and promised < prev:
                raise InvariantViolation(
                    f"server {node.pid}: promise regressed from {prev} "
                    f"to {promised}"
                )
            self._promise[node.pid] = promised
            decided = node.decided_idx
            if decided < self._decided.get(node.pid, 0):
                raise InvariantViolation(
                    f"server {node.pid}: decided index regressed from "
                    f"{self._decided[node.pid]} to {decided}"
                )
            self._decided[node.pid] = decided
            if node.is_leader:
                round_n = node.current_round
                owner = self._round_leader.get(round_n)
                if owner is not None and owner != node.pid:
                    raise InvariantViolation(
                        f"round {round_n} led by {owner} earlier and "
                        f"{node.pid} now"
                    )
                self._round_leader[round_n] = node.pid
