"""Storage backends for Sequence Paxos replicas.

The paper assumes the fail-recovery model: "State stored in non-volatile
storage is recoverable" (section 3). A replica persists four things:

- the log of accepted entries,
- ``promise`` — the highest round it has promised (nProm),
- ``acc_rnd`` — the round its accepted log was written in,
- ``decided_idx`` — the length of the decided prefix.

:class:`InMemoryStorage` is used by the simulator (crash-recovery tests keep
the storage object across a simulated crash). :class:`FileStorage` is a real
write-ahead implementation: an append-only record file replayed on open,
for use with the asyncio runtime and the failure-injection tests.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.omni.ballot import Ballot, BOTTOM

_REC_APPEND = 0
_REC_TRUNCATE = 1
_REC_PROMISE = 2
_REC_ACC_RND = 3
_REC_DECIDED = 4
_REC_COMPACT = 5
_REC_SNAPSHOT = 6

_LEN = struct.Struct(">I")


class Storage(ABC):
    """Persistent state of one Sequence Paxos replica.

    Log indices are *logical* and stable across compaction: after
    :meth:`compact_prefix`, entries below :meth:`compacted_idx` are gone
    from storage but every surviving entry keeps its original index.
    """

    # -- log --------------------------------------------------------------

    @abstractmethod
    def append_entry(self, entry: Any) -> int:
        """Append one entry; return the new log length."""

    @abstractmethod
    def append_entries(self, entries: Sequence[Any]) -> int:
        """Append several entries; return the new log length."""

    @abstractmethod
    def truncate_suffix(self, from_idx: int) -> None:
        """Drop every entry at index >= ``from_idx``."""

    @abstractmethod
    def get_entries(self, from_idx: int, to_idx: int) -> Tuple[Any, ...]:
        """Entries in ``[from_idx, to_idx)``; clamped to the log bounds."""

    @abstractmethod
    def log_len(self) -> int:
        """Number of entries in the log."""

    def get_suffix(self, from_idx: int) -> Tuple[Any, ...]:
        """Entries from ``from_idx`` to the end of the log."""
        return self.get_entries(from_idx, self.log_len())

    def get_entry(self, idx: int) -> Any:
        entries = self.get_entries(idx, idx + 1)
        if not entries:
            raise StorageError(f"log index {idx} out of range")
        return entries[0]

    # -- compaction ---------------------------------------------------------

    @abstractmethod
    def compact_prefix(self, idx: int) -> None:
        """Reclaim entries below logical index ``idx``.

        Only decided entries may be compacted; callers (Sequence Paxos'
        trim) additionally ensure every server in the configuration has
        decided past ``idx`` so nobody will ever need the prefix again.
        """

    @abstractmethod
    def compacted_idx(self) -> int:
        """First logical index still present in storage."""

    # -- snapshots ------------------------------------------------------------

    @abstractmethod
    def set_snapshot(self, state: Any, covers_idx: int) -> None:
        """Record a snapshot folding entries ``[0, covers_idx)``."""

    @abstractmethod
    def get_snapshot(self) -> Optional[Tuple[Any, int]]:
        """The stored ``(state, covers_idx)`` snapshot, if any."""

    def install_snapshot(self, state: Any, covers_idx: int) -> None:
        """Adopt a snapshot received from the leader.

        Everything below ``covers_idx`` — possibly the whole log — is
        replaced by ``state``; the log's logical length becomes at least
        ``covers_idx`` and the decided index advances to cover it.
        """
        if covers_idx <= self.compacted_idx():
            self.set_snapshot(state, covers_idx)
            return
        # Drop every entry below covers_idx, then mark them compacted. If
        # the local log is shorter than covers_idx, it is discarded whole
        # (those entries are superseded by the snapshot).
        if covers_idx >= self.log_len():
            self._reset_log_to(covers_idx)
        else:
            if covers_idx > self.get_decided_idx():
                self.set_decided_idx(covers_idx)
            self.compact_prefix(covers_idx)
        if covers_idx > self.get_decided_idx():
            self.set_decided_idx(covers_idx)
        self.set_snapshot(state, covers_idx)

    @abstractmethod
    def _reset_log_to(self, logical_len: int) -> None:
        """Discard the whole log, leaving an empty log whose compacted (and
        logical) length is ``logical_len``. Snapshot-install plumbing."""

    # -- paxos variables ---------------------------------------------------

    @abstractmethod
    def set_promise(self, ballot: Ballot) -> None: ...

    @abstractmethod
    def get_promise(self) -> Ballot: ...

    @abstractmethod
    def set_accepted_round(self, ballot: Ballot) -> None: ...

    @abstractmethod
    def get_accepted_round(self) -> Ballot: ...

    @abstractmethod
    def set_decided_idx(self, idx: int) -> None: ...

    @abstractmethod
    def get_decided_idx(self) -> int: ...


class InMemoryStorage(Storage):
    """Volatile storage; survives *simulated* crashes because the test
    harness keeps the object and hands it to the restarted replica."""

    def __init__(self) -> None:
        self._log: List[Any] = []
        self._compacted = 0
        self._snapshot: Optional[Tuple[Any, int]] = None
        self._promise: Ballot = BOTTOM
        self._acc_rnd: Ballot = BOTTOM
        self._decided_idx: int = 0

    def append_entry(self, entry: Any) -> int:
        self._log.append(entry)
        return self.log_len()

    def append_entries(self, entries: Sequence[Any]) -> int:
        self._log.extend(entries)
        return self.log_len()

    def truncate_suffix(self, from_idx: int) -> None:
        if from_idx < self._decided_idx:
            raise StorageError(
                f"refusing to truncate decided entries: {from_idx} < {self._decided_idx}"
            )
        del self._log[max(from_idx - self._compacted, 0):]

    def get_entries(self, from_idx: int, to_idx: int) -> Tuple[Any, ...]:
        from_idx = max(0, from_idx)
        if from_idx < self._compacted and from_idx < to_idx:
            raise StorageError(
                f"index {from_idx} was compacted away (first kept: "
                f"{self._compacted})"
            )
        lo = from_idx - self._compacted
        hi = max(to_idx - self._compacted, lo)
        return tuple(self._log[lo:hi])

    def log_len(self) -> int:
        return self._compacted + len(self._log)

    def compact_prefix(self, idx: int) -> None:
        if idx > self._decided_idx:
            raise StorageError(
                f"cannot compact undecided entries: {idx} > {self._decided_idx}"
            )
        if idx <= self._compacted:
            return
        del self._log[:idx - self._compacted]
        self._compacted = idx

    def compacted_idx(self) -> int:
        return self._compacted

    def set_snapshot(self, state: Any, covers_idx: int) -> None:
        self._snapshot = (state, covers_idx)

    def get_snapshot(self) -> Optional[Tuple[Any, int]]:
        return self._snapshot

    def _reset_log_to(self, logical_len: int) -> None:
        self._log = []
        self._compacted = logical_len
        if self._decided_idx < logical_len:
            self._decided_idx = logical_len

    def set_promise(self, ballot: Ballot) -> None:
        self._promise = ballot

    def get_promise(self) -> Ballot:
        return self._promise

    def set_accepted_round(self, ballot: Ballot) -> None:
        self._acc_rnd = ballot

    def get_accepted_round(self) -> Ballot:
        return self._acc_rnd

    def set_decided_idx(self, idx: int) -> None:
        if idx < self._decided_idx:
            raise StorageError(
                f"decided index must be monotone: {idx} < {self._decided_idx}"
            )
        self._decided_idx = idx

    def get_decided_idx(self) -> int:
        return self._decided_idx


class FileStorage(Storage):
    """Append-only write-ahead storage backed by a single record file.

    Records are length-framed pickles of ``(tag, payload)``. On open the
    file is replayed to rebuild the in-memory view, so reads are always
    served from memory while every mutation is durably appended first.
    """

    def __init__(self, path: str, sync: bool = False) -> None:
        self._path = path
        self._sync = sync
        self._log: List[Any] = []
        self._compacted = 0
        self._snapshot: Optional[Tuple[Any, int]] = None
        self._promise: Ballot = BOTTOM
        self._acc_rnd: Ballot = BOTTOM
        self._decided_idx: int = 0
        self._replay()
        self._file = open(path, "ab")

    # -- record plumbing ---------------------------------------------------

    def _replay(self) -> None:
        if not os.path.exists(self._path):
            return
        try:
            with open(self._path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise StorageError(f"cannot read {self._path}: {exc}") from exc
        buf = io.BytesIO(data)
        while True:
            head = buf.read(_LEN.size)
            if len(head) < _LEN.size:
                break  # clean EOF or torn final record: stop replay here
            (size,) = _LEN.unpack(head)
            body = buf.read(size)
            if len(body) < size:
                break  # torn write at crash: discard the partial record
            tag, payload = pickle.loads(body)
            self._apply_record(tag, payload)

    def _apply_record(self, tag: int, payload: Any) -> None:
        if tag == _REC_APPEND:
            self._log.extend(payload)
        elif tag == _REC_TRUNCATE:
            del self._log[max(payload - self._compacted, 0):]
        elif tag == _REC_COMPACT:
            del self._log[:payload - self._compacted]
            self._compacted = payload
        elif tag == _REC_SNAPSHOT:
            state, covers, reset = payload
            self._snapshot = (state, covers)
            if reset:
                self._log = []
                self._compacted = covers
                self._decided_idx = max(self._decided_idx, covers)
        elif tag == _REC_PROMISE:
            self._promise = payload
        elif tag == _REC_ACC_RND:
            self._acc_rnd = payload
        elif tag == _REC_DECIDED:
            self._decided_idx = payload
        else:
            raise StorageError(f"unknown record tag {tag}")

    def _write_record(self, tag: int, payload: Any) -> None:
        body = pickle.dumps((tag, payload), protocol=pickle.HIGHEST_PROTOCOL)
        try:
            self._file.write(_LEN.pack(len(body)))
            self._file.write(body)
            self._file.flush()
            if self._sync:
                os.fsync(self._file.fileno())
        except OSError as exc:
            raise StorageError(f"cannot write {self._path}: {exc}") from exc

    def close(self) -> None:
        self._file.close()

    # -- Storage API ---------------------------------------------------------

    def append_entry(self, entry: Any) -> int:
        return self.append_entries([entry])

    def append_entries(self, entries: Sequence[Any]) -> int:
        entries = list(entries)
        self._write_record(_REC_APPEND, entries)
        self._log.extend(entries)
        return self.log_len()

    def truncate_suffix(self, from_idx: int) -> None:
        if from_idx < self._decided_idx:
            raise StorageError(
                f"refusing to truncate decided entries: {from_idx} < {self._decided_idx}"
            )
        self._write_record(_REC_TRUNCATE, from_idx)
        del self._log[max(from_idx - self._compacted, 0):]

    def get_entries(self, from_idx: int, to_idx: int) -> Tuple[Any, ...]:
        from_idx = max(0, from_idx)
        if from_idx < self._compacted and from_idx < to_idx:
            raise StorageError(
                f"index {from_idx} was compacted away (first kept: "
                f"{self._compacted})"
            )
        lo = from_idx - self._compacted
        hi = max(to_idx - self._compacted, lo)
        return tuple(self._log[lo:hi])

    def log_len(self) -> int:
        return self._compacted + len(self._log)

    def compact_prefix(self, idx: int) -> None:
        if idx > self._decided_idx:
            raise StorageError(
                f"cannot compact undecided entries: {idx} > {self._decided_idx}"
            )
        if idx <= self._compacted:
            return
        self._write_record(_REC_COMPACT, idx)
        del self._log[:idx - self._compacted]
        self._compacted = idx

    def compacted_idx(self) -> int:
        return self._compacted

    def set_snapshot(self, state: Any, covers_idx: int) -> None:
        self._write_record(_REC_SNAPSHOT, (state, covers_idx, False))
        self._snapshot = (state, covers_idx)

    def get_snapshot(self) -> Optional[Tuple[Any, int]]:
        return self._snapshot

    def _reset_log_to(self, logical_len: int) -> None:
        # Persist the reset together with the (following) snapshot record.
        self._write_record(_REC_SNAPSHOT, (None, logical_len, True))
        self._log = []
        self._compacted = logical_len
        if self._decided_idx < logical_len:
            self._decided_idx = logical_len

    def set_promise(self, ballot: Ballot) -> None:
        self._write_record(_REC_PROMISE, ballot)
        self._promise = ballot

    def get_promise(self) -> Ballot:
        return self._promise

    def set_accepted_round(self, ballot: Ballot) -> None:
        self._write_record(_REC_ACC_RND, ballot)
        self._acc_rnd = ballot

    def get_accepted_round(self) -> Ballot:
        return self._acc_rnd

    def set_decided_idx(self, idx: int) -> None:
        if idx < self._decided_idx:
            raise StorageError(
                f"decided index must be monotone: {idx} < {self._decided_idx}"
            )
        self._write_record(_REC_DECIDED, idx)
        self._decided_idx = idx

    def get_decided_idx(self) -> int:
        return self._decided_idx


def snapshot_state(storage: Storage) -> Optional[dict]:
    """Debugging helper: a dict view of the persistent state."""
    return {
        "log_len": storage.log_len(),
        "promise": storage.get_promise(),
        "acc_rnd": storage.get_accepted_round(),
        "decided_idx": storage.get_decided_idx(),
    }
