"""Wire messages for BLE, Sequence Paxos, and the service layer.

Every message implements ``wire_size()`` returning an approximate
serialized size in bytes. The simulator uses it to account per-server IO,
which the paper reports for the reconfiguration experiments (peak outgoing
MB per 5 s window at the leader).

Messages are frozen (and, on 3.10+, slotted) dataclasses: the simulator
may deliver the same object to several recipients, so immutability is
load-bearing, and slots cut per-message memory and attribute-read cost on
the replication hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.obs.spans import TraceContext
from repro.omni.ballot import Ballot
from repro.omni.entry import entry_wire_size
from repro.util.compat import SLOTTED, fast_frozen_pickle

_HEADER = 24  # rough per-message framing overhead (type tag, src, dst, len)
_BALLOT = 20  # three varints, conservatively


def entries_wire_size(entries: Tuple[Any, ...]) -> int:
    """Total approximate size of a tuple of log entries."""
    return sum(entry_wire_size(entry) for entry in entries)


# --------------------------------------------------------------------------
# Ballot Leader Election (paper section 5.2, Figure 4)
# --------------------------------------------------------------------------

@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class HeartbeatRequest:
    """Start-of-round probe; ``round`` identifies the heartbeat round."""

    round: int

    def wire_size(self) -> int:
        return _HEADER + 8


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class HeartbeatReply:
    """Reply carrying the sender's ballot and quorum-connected flag."""

    round: int
    ballot: Ballot
    quorum_connected: bool

    def wire_size(self) -> int:
        return _HEADER + 8 + _BALLOT + 1


# --------------------------------------------------------------------------
# Sequence Paxos (paper section 4, Figure 3)
# --------------------------------------------------------------------------

@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class Prepare:
    """Leader -> follower: open round ``n`` and ask for a promise.

    Carries the leader's ``acc_rnd``, log length and decided index so the
    follower can compute exactly which suffix the leader is missing
    (paper section 4.1.1).
    """

    n: Ballot
    acc_rnd: Ballot
    log_idx: int
    decided_idx: int

    def wire_size(self) -> int:
        return _HEADER + 2 * _BALLOT + 16


def _snapshot_wire_size(snapshot: Optional[Tuple[Any, int]]) -> int:
    if snapshot is None:
        return 0
    state, _covers = snapshot
    sizer = getattr(state, "wire_size", None)
    if sizer is not None:
        return sizer() + 8
    try:
        return max(len(state), 16) + 8
    except TypeError:
        return 72


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class Promise:
    """Follower -> leader: promise round ``n``, with the leader's missing
    suffix (possibly empty).

    If the follower already compacted part of the suffix the leader lacks,
    ``snapshot = (state, covers_idx)`` replaces the compacted prefix.
    """

    n: Ballot
    acc_rnd: Ballot
    suffix: Tuple[Any, ...]
    log_idx: int
    decided_idx: int
    snapshot: Optional[Tuple[Any, int]] = None

    def wire_size(self) -> int:
        return (_HEADER + 2 * _BALLOT + 16 + entries_wire_size(self.suffix)
                + _snapshot_wire_size(self.snapshot))


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class AcceptSync:
    """Leader -> follower: synchronize the follower's log.

    The follower truncates its log at ``sync_idx`` and appends ``suffix``;
    afterwards its log is guaranteed to be a prefix of the leader's log.
    When the follower needs entries the leader has compacted,
    ``snapshot = (state, covers_idx)`` stands in for the prefix.

    ``session`` numbers the sync sessions a leader opens with this follower
    within its tenure (1, 2, ...). Every AcceptDecide carries the session it
    belongs to, so a reordered straggler from before a re-sync can never be
    mistaken for a fresh message of the current session.
    """

    n: Ballot
    suffix: Tuple[Any, ...]
    sync_idx: int
    decided_idx: int
    snapshot: Optional[Tuple[Any, int]] = None
    session: int = 1

    def wire_size(self) -> int:
        return (_HEADER + _BALLOT + 20 + entries_wire_size(self.suffix)
                + _snapshot_wire_size(self.snapshot))


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class AcceptDecide:
    """Leader -> follower: replicate ``entries`` (FIFO pipelined) and
    piggyback the leader's current decided index.

    ``(session, seq)`` is the message's position in the replication stream:
    ``session`` names the AcceptSync session it belongs to and ``seq`` counts
    the messages of that session (restarting at 1 after each AcceptSync). A
    follower that observes a seq gap — or a session ahead of the sync it last
    applied — knows a message was lost on a non-TCP transport and requests a
    resynchronization; a message from an *older* session is a reordered or
    duplicated straggler and is dropped instead of appended out of place.
    """

    n: Ballot
    entries: Tuple[Any, ...]
    decided_idx: int
    seq: int = 0
    session: int = 1

    def wire_size(self) -> int:
        return _HEADER + _BALLOT + 16 + entries_wire_size(self.entries)


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class Accepted:
    """Follower -> leader: the follower's log is accepted up to ``log_idx``
    (and decided up to ``decided_idx`` — the leader uses the latter to
    validate log compaction)."""

    n: Ballot
    log_idx: int
    decided_idx: int = 0

    def wire_size(self) -> int:
        return _HEADER + _BALLOT + 16


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class Trim:
    """Leader -> follower: every server has decided past ``trimmed_idx``;
    reclaim the log prefix below it (compaction)."""

    n: Ballot
    trimmed_idx: int

    def wire_size(self) -> int:
        return _HEADER + _BALLOT + 8


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class Decide:
    """Leader -> follower: entries up to ``decided_idx`` are decided."""

    n: Ballot
    decided_idx: int

    def wire_size(self) -> int:
        return _HEADER + _BALLOT + 8


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class PrepareReq:
    """Recovering server / re-established session -> peers: ask the current
    leader (if the recipient is one) to send a fresh Prepare
    (paper section 4.1.3)."""

    def wire_size(self) -> int:
        return _HEADER


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class ProposalForward:
    """Follower -> leader: forward client proposals to the leader."""

    entries: Tuple[Any, ...]

    def wire_size(self) -> int:
        return _HEADER + entries_wire_size(self.entries)


# --------------------------------------------------------------------------
# Service layer: reconfiguration and log migration (paper section 6)
# --------------------------------------------------------------------------

@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class NewConfiguration:
    """Continuing server -> new server: announce configuration
    ``config_id`` with member set ``servers``; the joiner must fetch the
    first ``log_len`` entries of the replicated log before starting."""

    config_id: int
    servers: Tuple[int, ...]
    log_len: int
    donors: Tuple[int, ...] = ()
    metadata: Optional[bytes] = None

    def wire_size(self) -> int:
        size = _HEADER + 16 + 8 * (len(self.servers) + len(self.donors))
        if self.metadata is not None:
            size += len(self.metadata)
        return size


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class JoinComplete:
    """Server -> everyone in the new configuration: the sender has started
    ``config_id`` (so it can serve as a migration donor and needs no further
    announcements)."""

    config_id: int

    def wire_size(self) -> int:
        return _HEADER + 8


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class LogPullRequest:
    """Joining server -> donor: request decided entries
    ``[from_idx, to_idx)`` of the global replicated log."""

    config_id: int
    from_idx: int
    to_idx: int

    def wire_size(self) -> int:
        return _HEADER + 24


@fast_frozen_pickle
@dataclass(frozen=True, **SLOTTED)
class LogSegment:
    """Donor -> joining server: a contiguous slice of decided entries.

    ``complete`` is False when the donor could only serve a prefix of the
    requested range (it has not decided that far yet); the joiner re-requests
    the remainder, possibly from another donor.
    """

    config_id: int
    from_idx: int
    entries: Tuple[Any, ...]
    complete: bool

    def wire_size(self) -> int:
        return _HEADER + 16 + 1 + entries_wire_size(self.entries)


# --------------------------------------------------------------------------
# Multiplexing envelope used by OmniPaxosServer
# --------------------------------------------------------------------------

#: Component tags for the envelope.
COMPONENT_BLE = "ble"
COMPONENT_SP = "sp"
COMPONENT_SERVICE = "svc"


@dataclass(frozen=True, **SLOTTED)
class Envelope:
    """Routes a payload to the right component of the right configuration.

    BLE and Sequence Paxos instances may only communicate with peers in the
    same configuration (paper section 6: "BLE and Sequence Paxos components
    can only communicate with others in the same configuration"), which the
    ``config_id`` tag enforces.
    """

    config_id: int
    component: str
    payload: Any
    #: Optional causal-tracing context (see :mod:`repro.obs.spans`).
    #: Defaults to ``None``; ``__setstate__`` below keeps frames pickled
    #: before this field existed (no ``trace`` in their state) readable.
    trace: Optional["TraceContext"] = None

    def __getstate__(self,
                     _names=("config_id", "component", "payload", "trace")):
        return tuple(getattr(self, n) for n in _names)

    def __setstate__(self, state: Any) -> None:
        # Accept every pickle-state shape an Envelope has ever produced:
        # - a plain dict (pre-slots frames, possibly without ``trace``),
        # - a ``(dict_or_None, slots_dict)`` pair (default object protocol),
        # - a list/tuple of field values (``__getstate__`` above).
        setattr_ = object.__setattr__  # the class is frozen
        if isinstance(state, tuple) and len(state) == 2 \
                and isinstance(state[1], dict):
            merged = dict(state[0] or {})
            merged.update(state[1])
            state = merged
        if isinstance(state, dict):
            setattr_(self, "trace", None)
            for name, value in state.items():
                setattr_(self, name, value)
        else:
            for name, value in zip(
                    ("config_id", "component", "payload", "trace"), state):
                setattr_(self, name, value)

    def wire_size(self) -> int:
        base = 6 + self.payload.wire_size()
        if self.trace is not None:
            base += TraceContext.WIRE_SIZE
        return base


#: Every wire-crossing message type this module defines, in definition
#: order. The runtime codec registers a stable binary tag for each
#: (`repro.runtime.codec`), and the codec test suite asserts this tuple
#: and the registry never drift apart.
WIRE_MESSAGES = (
    HeartbeatRequest,
    HeartbeatReply,
    Prepare,
    Promise,
    AcceptSync,
    AcceptDecide,
    Accepted,
    Trim,
    Decide,
    PrepareReq,
    ProposalForward,
    NewConfiguration,
    JoinComplete,
    LogPullRequest,
    LogSegment,
    Envelope,
)
