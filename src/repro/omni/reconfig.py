"""Log migration for reconfiguration (paper section 6).

When a stop-sign ends configuration ``c_i``, servers that join ``c_{i+1}``
without the full replicated log must fetch the missing prefix before their
BLE / Sequence Paxos instances may start. The paper's key idea is that this
migration happens *in the service layer*, decoupled from log replication, so
a joiner can pull different segments **in parallel from any server** that has
decided them — not just the leader.

:class:`MigrationPlan` implements the joiner side as a small sans-io state
machine with per-donor flow control: each donor serves a bounded window of
outstanding chunks, chunks that time out or come back partial rotate to the
next donor. Two strategies are provided:

- ``"parallel"`` — chunks spread across all known donors (Figure 6b);
- ``"leader"`` — every chunk requested from a single designated donor
  (Figure 6a); used by the ablation benchmark to isolate the benefit of
  parallel migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, MigrationError
from repro.omni.messages import LogPullRequest, LogSegment

PARALLEL = "parallel"
LEADER_ONLY = "leader"
_STRATEGIES = (PARALLEL, LEADER_ONLY)


@dataclass
class _Chunk:
    """One range of the global log to fetch. ``from_idx`` advances as data
    arrives; the chunk is done when it reaches ``to_idx``."""

    from_idx: int
    to_idx: int
    donor: Optional[int] = None
    deadline: float = 0.0

    @property
    def done(self) -> bool:
        return self.from_idx >= self.to_idx

    @property
    def outstanding(self) -> bool:
        return self.donor is not None and not self.done


class MigrationPlan:
    """Joiner-side log migration state machine.

    The caller owns communication: it drains :meth:`take_outbox` for
    ``(dst, LogPullRequest)`` pairs, feeds in :meth:`on_segment`, and calls
    :meth:`tick` so timed-out chunks rotate to the next donor. Once
    :meth:`complete` is true, :meth:`collected_entries` yields the fetched
    range in order.
    """

    def __init__(
        self,
        config_id: int,
        from_idx: int,
        to_idx: int,
        donors: Sequence[int],
        strategy: str = PARALLEL,
        chunk_entries: int = 10_000,
        retry_ms: float = 1_000.0,
        window_per_donor: int = 2,
    ):
        if strategy not in _STRATEGIES:
            raise ConfigError(f"unknown migration strategy {strategy!r}")
        if to_idx < from_idx:
            raise ConfigError("migration range must not be negative")
        if chunk_entries <= 0 or window_per_donor <= 0:
            raise ConfigError("chunk_entries and window must be positive")
        if not donors and to_idx > from_idx:
            raise MigrationError("no donors available for log migration")
        self._config_id = config_id
        self._from_idx = from_idx
        self._to_idx = to_idx
        self._strategy = strategy
        self._retry_ms = retry_ms
        self._window = window_per_donor
        self._donors: List[int] = list(dict.fromkeys(donors))
        self._rotate_at = 0
        self._chunks: List[_Chunk] = [
            _Chunk(lo, min(lo + chunk_entries, to_idx))
            for lo in range(from_idx, to_idx, chunk_entries)
        ]
        self._entries: Dict[int, Any] = {}
        self._outbox: List[Tuple[int, LogPullRequest]] = []
        self._started = False
        self.segments_received = 0
        self.retries = 0

    # ------------------------------------------------------------------

    @property
    def config_id(self) -> int:
        return self._config_id

    @property
    def target_len(self) -> int:
        return self._to_idx

    @property
    def donors(self) -> Tuple[int, ...]:
        return tuple(self._donors)

    def complete(self) -> bool:
        return all(chunk.done for chunk in self._chunks)

    def progress(self) -> float:
        """Fraction of the target range already fetched, in [0, 1]."""
        total = self._to_idx - self._from_idx
        if total == 0:
            return 1.0
        missing = sum(c.to_idx - c.from_idx for c in self._chunks if not c.done)
        return 1.0 - missing / total

    # ------------------------------------------------------------------

    def start(self, now_ms: float) -> None:
        """Issue the initial window of pull requests."""
        if self._started:
            return
        self._started = True
        self._fill_windows(now_ms)

    def add_donor(self, pid: int) -> None:
        """Register another server that completed the join (paper: a newly
        added server that finished migration can itself serve segments)."""
        if pid not in self._donors:
            self._donors.append(pid)

    def remove_donor(self, pid: int) -> None:
        """Stop using a donor (e.g. observed dead); outstanding chunks
        rotate away at their next timeout."""
        if pid in self._donors and len(self._donors) > 1:
            self._donors.remove(pid)

    def on_segment(self, src: int, seg: LogSegment, now_ms: float) -> None:
        """Absorb a donor's reply and keep its pipeline full."""
        if seg.config_id != self._config_id:
            return
        self.segments_received += 1
        for offset, entry in enumerate(seg.entries):
            idx = seg.from_idx + offset
            if self._from_idx <= idx < self._to_idx:
                self._entries[idx] = entry
        served_to = seg.from_idx + len(seg.entries)
        for chunk in self._chunks:
            if chunk.done or chunk.from_idx != seg.from_idx:
                continue
            if served_to <= chunk.from_idx:
                # No progress: the donor has not decided this range yet.
                # Hold the chunk until its deadline, then rotate (avoids a
                # tight re-request loop between donors that all lack data).
                chunk.deadline = now_ms + self._retry_ms
                break
            chunk.from_idx = min(served_to, chunk.to_idx)
            if chunk.done:
                chunk.donor = None
            else:
                # Partial: this donor served what it had; try another for
                # the remainder right away.
                self.retries += 1
                self._request(chunk, self._next_donor(exclude=src), now_ms)
            break
        self._fill_windows(now_ms)

    def tick(self, now_ms: float) -> None:
        """Rotate chunks whose request timed out to another donor."""
        if not self._started:
            return
        for chunk in self._chunks:
            if chunk.outstanding and now_ms >= chunk.deadline:
                self.retries += 1
                self._request(chunk, self._next_donor(exclude=chunk.donor),
                              now_ms)
        self._fill_windows(now_ms)

    def take_outbox(self) -> List[Tuple[int, LogPullRequest]]:
        out, self._outbox = self._outbox, []
        return out

    def collected_entries(self) -> Tuple[Any, ...]:
        """The fetched range ``[from_idx, to_idx)`` in order.

        Raises :class:`MigrationError` if called before :meth:`complete`.
        """
        if not self.complete():
            raise MigrationError(f"migration only {self.progress():.0%} complete")
        return tuple(self._entries[i] for i in range(self._from_idx, self._to_idx))

    # ------------------------------------------------------------------

    def _active_donors(self) -> List[int]:
        if self._strategy == LEADER_ONLY:
            return self._donors[:1]
        return self._donors

    def _next_donor(self, exclude: Optional[int] = None) -> int:
        donors = self._active_donors()
        if len(donors) > 1 and exclude is not None:
            donors = [d for d in donors if d != exclude]
        self._rotate_at += 1
        return donors[self._rotate_at % len(donors)]

    def _outstanding_at(self, donor: int) -> int:
        return sum(1 for c in self._chunks if c.outstanding and c.donor == donor)

    def _fill_windows(self, now_ms: float) -> None:
        """Assign unassigned chunks to donors with spare window slots."""
        for donor in self._active_donors():
            spare = self._window - self._outstanding_at(donor)
            if spare <= 0:
                continue
            for chunk in self._chunks:
                if spare <= 0:
                    break
                if not chunk.done and chunk.donor is None:
                    self._request(chunk, donor, now_ms)
                    spare -= 1

    def _request(self, chunk: _Chunk, donor: int, now_ms: float) -> None:
        chunk.donor = donor
        chunk.deadline = now_ms + self._retry_ms
        self._outbox.append(
            (donor, LogPullRequest(self._config_id, chunk.from_idx, chunk.to_idx))
        )


def serve_pull_request(
    global_log: Sequence[Any], req: LogPullRequest
) -> LogSegment:
    """Donor-side handler: slice the decided global log for a pull request.

    A donor that has not decided up to ``req.to_idx`` yet serves what it has
    and marks the segment incomplete — the paper notes segments "can even be
    fetched from servers that have not reached the SS in c_i yet".
    """
    have = len(global_log)
    lo = req.from_idx
    hi = max(min(req.to_idx, have), lo)
    return LogSegment(
        config_id=req.config_id,
        from_idx=lo,
        entries=tuple(global_log[lo:hi]),
        complete=hi >= req.to_idx,
    )
