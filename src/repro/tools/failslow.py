"""CLI: the fig8-style fail-slow leader experiment (gray failure).

Example::

    python -m repro.tools.failslow --timeout-ms 100 --seeds 1 2 3
    python -m repro.tools.failslow --protocol omni --gray-aware --geo regions3

With no ``--protocol`` the full comparison grid runs — default
heartbeat-based election vs the ``gray_aware`` variants for Omni BLE and
Raft PV+CQ — and the summary contrasts how long each cell left a 100×
slow leader in charge. ``--json`` emits one JSON object per cell for
scripting; ``--obs`` exports the run's events for the series/timeline
tooling.
"""

from __future__ import annotations

import argparse
import json

from repro.sim.failslow import (
    COMPARISON_CELLS,
    run_failslow_scenario,
)
from repro.sim.geo import GEO_MAPS
from repro.sim.harness import PROTOCOLS
from repro.util.stats import mean_ci


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Fail-slow leader experiment: fig8-style downtime "
                    "comparison under a gray-failed (100x slow) leader."
    )
    parser.add_argument("--protocol", choices=PROTOCOLS, default=None,
                        help="run one cell only (default: comparison grid)")
    parser.add_argument("--gray-aware", action="store_true",
                        help="with --protocol: enable the gray-aware "
                             "self-demotion reaction")
    parser.add_argument("--timeout-ms", type=float, default=100.0,
                        help="election timeout / heartbeat period")
    parser.add_argument("--factor", type=float, default=100.0,
                        help="leader slowdown factor (tick scale)")
    parser.add_argument("--per-msg-ms", type=float, default=5.0,
                        help="serialized CPU cost per message on the "
                             "slow leader")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="slow-window length (default: 40 timeouts)")
    parser.add_argument("--servers", type=int, default=5)
    parser.add_argument("--cp", type=int, default=8,
                        help="concurrent proposals kept in flight")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument("--geo", choices=sorted(GEO_MAPS), default=None,
                        help="run inside a named geo latency environment")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON object per cell instead of "
                             "the table")
    return parser


def _cell_label(protocol: str, gray_aware: bool) -> str:
    return f"{protocol}{'+gray' if gray_aware else ''}"


def _run_cells(args):
    """Run every (protocol, gray_aware, seed) cell; yield per-cell stats."""
    if args.protocol is not None:
        cells = [(args.protocol, args.gray_aware)]
    else:
        cells = list(COMPARISON_CELLS)
    for protocol, gray_aware in cells:
        results = [
            run_failslow_scenario(
                protocol,
                gray_aware=gray_aware,
                election_timeout_ms=args.timeout_ms,
                slow_factor=args.factor,
                per_msg_ms=args.per_msg_ms,
                slow_duration_ms=args.duration_ms,
                concurrent_proposals=args.cp,
                seed=seed,
                num_servers=args.servers,
                geo=args.geo,
            )
            for seed in args.seeds
        ]
        yield protocol, gray_aware, results


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    rows = []
    for protocol, gray_aware, results in _run_cells(args):
        label = _cell_label(protocol, gray_aware)
        if args.json:
            for seed, result in zip(args.seeds, results):
                print(json.dumps({"seed": seed, **result.to_dict()},
                                 sort_keys=True))
        handovers = [r.handover_ms for r in results
                     if r.handover_ms is not None]
        rows.append({
            "label": label,
            "handover": mean_ci(handovers) if handovers else None,
            "held_on": len(results) - len(handovers),
            "dip": mean_ci([r.throughput_dip for r in results]),
            "decided": mean_ci(
                [float(r.decided_during_slow) for r in results]
            ),
            "downtime": mean_ci([r.downtime_ms for r in results]),
        })
    if args.json:
        return 0

    print(f"fail-slow leader: factor=x{args.factor:.0f} "
          f"per_msg={args.per_msg_ms:.1f}ms timeout={args.timeout_ms:.0f}ms "
          f"seeds={len(args.seeds)}"
          + (f" geo={args.geo}" if args.geo else ""))
    print()
    header = (f"{'cell':<14} {'handover_ms':>14} {'held_on':>8} "
              f"{'tput_dip':>9} {'decided':>10} {'downtime_ms':>12}")
    print(header)
    print("-" * len(header))
    for row in rows:
        handover = (f"{row['handover'].mean:11.0f}   "
                    if row["handover"] is not None else f"{'never':>14}")
        print(f"{row['label']:<14} {handover:>14} {row['held_on']:>8} "
              f"{row['dip'].mean:>9.2f} {row['decided'].mean:>10.0f} "
              f"{row['downtime'].mean:>12.0f}")
    print()
    # The experiment's point, stated as a verdict: gray-aware cells must
    # shed the slow leader; default cells are expected to keep it.
    aware = [r for r in rows if "+gray" in r["label"]]
    stuck = [r["label"] for r in aware if r["handover"] is None]
    if stuck:
        print(f"verdict : FAIL — gray-aware cell(s) never handed over: "
              f"{', '.join(stuck)}")
        return 1
    if aware:
        print("verdict : gray-aware cells handed leadership off the slow "
              "leader; default cells kept it for the whole window")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
