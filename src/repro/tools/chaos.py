"""CLI: deterministic chaos runs, replay, shrinking, and the CI smoke.

::

    repro-chaos run --seed 7 --protocol omni --out schedule.json
    repro-chaos replay schedule.json --obs export.jsonl
    repro-chaos shrink failing.json --out minimal.json
    repro-chaos smoke --seeds 5 --artifacts-dir chaos-artifacts

``run`` generates the seed's schedule, executes it, and prints the
verdict plus the bit-stable digests (schedule + decided log) that make
determinism checkable from the shell: running the same seed twice must
print identical lines. ``replay`` executes an emitted schedule file
byte-identically. ``shrink`` ddmins a failing schedule to a minimal
reproducer. ``smoke`` sweeps fixed seeds across protocols for CI; on any
violation it writes the schedule + obs export into an artifacts dir and
exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.chaos.engine import ChaosResult, run_schedule
from repro.chaos.generator import generate_schedule
from repro.chaos.schedule import ChaosSchedule, describe_op
from repro.chaos.shrink import shrink_schedule
from repro.obs.exporters import JsonLinesSink
from repro.obs.registry import MetricsRegistry
from repro.sim.geo import GEO_MAPS
from repro.sim.harness import PROTOCOLS

#: Protocols the CI smoke sweeps (all of them).
SMOKE_PROTOCOLS = PROTOCOLS


def _registry_for(path):
    """An enabled registry exporting to ``path`` (None -> no-op default)."""
    if path is None:
        return None
    reg = MetricsRegistry()
    reg.enable_tracing()
    reg.add_sink(JsonLinesSink(path))
    return reg


def _print_result(schedule: ChaosSchedule, result: ChaosResult,
                  verbose: bool) -> None:
    if verbose:
        for op in schedule.ops:
            print(f"  {describe_op(op)}")
    for key, value in sorted(result.to_dict().items()):
        if key in ("per_server_decided", "messages"):
            value = json.dumps(value, sort_keys=True)
        print(f"{key}={value}")


def cmd_run(args) -> int:
    schedule = generate_schedule(
        seed=args.seed,
        protocol=args.protocol,
        num_servers=args.servers,
        duration_ms=args.duration_ms,
        num_ops=args.ops,
        election_timeout_ms=args.election_timeout_ms,
        allow_wipe=args.allow_wipe,
        geo=args.geo,
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(schedule.to_json() + "\n")
    result = run_schedule(schedule, obs=_registry_for(args.obs))
    _print_result(schedule, result, args.verbose)
    return 0 if result.ok else 1


def cmd_replay(args) -> int:
    with open(args.schedule) as fh:
        schedule = ChaosSchedule.from_json(fh.read())
    result = run_schedule(schedule, obs=_registry_for(args.obs))
    _print_result(schedule, result, args.verbose)
    return 0 if result.ok else 1


def cmd_shrink(args) -> int:
    with open(args.schedule) as fh:
        schedule = ChaosSchedule.from_json(fh.read())
    if run_schedule(schedule).ok:
        print("schedule does not reproduce a violation; nothing to shrink",
              file=sys.stderr)
        return 2
    shrunk, runs = shrink_schedule(schedule, max_runs=args.max_runs)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(shrunk.to_json() + "\n")
    print(f"shrunk {len(schedule.ops)} -> {len(shrunk.ops)} ops "
          f"in {runs} runs")
    for op in shrunk.ops:
        print(f"  {describe_op(op)}")
    result = run_schedule(shrunk, obs=_registry_for(args.obs))
    _print_result(shrunk, result, verbose=False)
    return 0


def cmd_smoke(args) -> int:
    failures = 0
    protocols = args.protocols or list(SMOKE_PROTOCOLS)
    for protocol in protocols:
        for seed in range(args.seed_base, args.seed_base + args.seeds):
            schedule = generate_schedule(
                seed=seed,
                protocol=protocol,
                num_servers=args.servers,
                duration_ms=args.duration_ms,
                num_ops=args.ops,
                election_timeout_ms=args.election_timeout_ms,
                # Wipes violate the fail-recovery model on purpose; the
                # smoke asserts the *model-conforming* faults are safe.
                allow_wipe=False,
                geo=args.geo,
            )
            result = run_schedule(schedule)
            status = "ok" if result.ok else "VIOLATION"
            print(f"{protocol} seed={seed} {status} "
                  f"decided={result.decided_len} "
                  f"digest={result.decided_digest}")
            if not result.ok:
                failures += 1
                print(f"  {result.violation} at t={result.violation_at_ms}",
                      file=sys.stderr)
                if args.artifacts_dir:
                    os.makedirs(args.artifacts_dir, exist_ok=True)
                    base = os.path.join(
                        args.artifacts_dir, f"{protocol}-seed{seed}"
                    )
                    with open(base + ".schedule.json", "w") as fh:
                        fh.write(schedule.to_json() + "\n")
                    # Re-run with an enabled registry so the artifact
                    # includes the full event export (deterministic
                    # replay) plus the flight-recorder dump of the final
                    # moments before the violation.
                    run_schedule(
                        schedule,
                        obs=_registry_for(base + ".events.jsonl"),
                        flight_path=base + ".flight.jsonl",
                    )
    if failures:
        print(f"{failures} failing schedule(s)", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Deterministic chaos engine: run, replay, shrink, smoke.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_gen: bool) -> None:
        p.add_argument("--obs", default=None,
                       help="write a JSON-lines obs export here")
        p.add_argument("--verbose", action="store_true",
                       help="also list the fault ops")
        if with_gen:
            p.add_argument("--protocol", choices=PROTOCOLS, default="omni")
            p.add_argument("--servers", type=int, default=3)
            p.add_argument("--duration-ms", type=float, default=20_000.0)
            p.add_argument("--ops", type=int, default=10)
            p.add_argument("--election-timeout-ms", type=float, default=100.0)
            p.add_argument("--geo", choices=sorted(GEO_MAPS), default=None,
                           help="run inside a named geo latency environment")

    p_run = sub.add_parser("run", help="generate a seed's schedule and run it")
    p_run.add_argument("--seed", type=int, required=True)
    p_run.add_argument("--out", default=None,
                       help="write the generated schedule JSON here")
    p_run.add_argument("--allow-wipe", action="store_true",
                       help="permit wiped restarts (violates fail-recovery)")
    add_common(p_run, with_gen=True)

    p_replay = sub.add_parser("replay", help="run an emitted schedule file")
    p_replay.add_argument("schedule")
    add_common(p_replay, with_gen=False)

    p_shrink = sub.add_parser("shrink",
                              help="ddmin a failing schedule to a minimum")
    p_shrink.add_argument("schedule")
    p_shrink.add_argument("--out", default=None)
    p_shrink.add_argument("--max-runs", type=int, default=200)
    add_common(p_shrink, with_gen=False)

    p_smoke = sub.add_parser(
        "smoke", help="fixed-seed sweep across protocols (CI)"
    )
    p_smoke.add_argument("--seeds", type=int, default=3,
                         help="schedules per protocol")
    p_smoke.add_argument("--seed-base", type=int, default=100)
    p_smoke.add_argument("--protocols", nargs="*", choices=PROTOCOLS,
                         default=None)
    p_smoke.add_argument("--servers", type=int, default=3)
    p_smoke.add_argument("--duration-ms", type=float, default=8_000.0)
    p_smoke.add_argument("--ops", type=int, default=6)
    p_smoke.add_argument("--election-timeout-ms", type=float, default=100.0)
    p_smoke.add_argument("--geo", choices=sorted(GEO_MAPS), default=None,
                         help="sweep inside a named geo latency environment")
    p_smoke.add_argument("--artifacts-dir", default=None,
                         help="write failing schedules + exports here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "replay": cmd_replay,
        "shrink": cmd_shrink,
        "smoke": cmd_smoke,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
