"""CLI: measure steady-state throughput (paper section 7.1).

Example::

    python -m repro.tools.throughput --protocol omni --servers 5 --cp 128 --wan
"""

from __future__ import annotations

import argparse

from repro.sim.harness import (
    PROTOCOLS,
    ExperimentConfig,
    build_experiment,
    wan_latency_map,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Measure regular-execution throughput (Figure 7)."
    )
    parser.add_argument("--protocol", choices=PROTOCOLS, default="omni")
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--cp", type=int, default=128,
                        help="concurrent proposals kept in flight")
    parser.add_argument("--wan", action="store_true",
                        help="use the paper's WAN latencies (RTT 105/145 ms)")
    parser.add_argument("--duration-ms", type=float, default=10_000.0)
    parser.add_argument("--seed", type=int, default=1)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    servers = tuple(range(1, args.servers + 1))
    leader = args.servers
    cfg = ExperimentConfig(
        protocol=args.protocol,
        num_servers=args.servers,
        election_timeout_ms=500.0 if args.wan else 100.0,
        latency_map=wan_latency_map(servers, leader) if args.wan else {},
        seed=args.seed,
        initial_leader=leader,
    )
    exp = build_experiment(cfg)
    client = exp.make_client(concurrent_proposals=args.cp)
    warmup = 3_000.0 if args.wan else 1_000.0
    exp.cluster.run_for(warmup)
    start = exp.cluster.now
    exp.cluster.run_for(args.duration_ms)
    throughput = client.tracker.throughput(start, exp.cluster.now)
    setting = "wan" if args.wan else "lan"
    print(f"protocol={args.protocol} n={args.servers} cp={args.cp} "
          f"net={setting}")
    print(f"throughput: {throughput:12.0f} decided/s "
          f"(virtual time; shapes comparable, absolutes simulator-scale)")
    print(f"decided   : {client.decided_count}")
    print(f"leader    : server {exp.cluster.leaders()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
