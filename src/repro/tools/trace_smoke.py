"""CLI: run a short traced partition scenario and export it.

The tracing smoke check — one command produces a JSON-lines export that
``repro-obs timeline`` / ``repro-obs spans`` can reconstruct::

    python -m repro.tools.trace_smoke smoke.jsonl
    python -m repro.tools.obs_report timeline smoke.jsonl

It runs :func:`~repro.sim.scenarios.run_partition_scenario` with causal
tracing enabled and prints the harness's own measurements as ``key=value``
lines, so CI (and the parity tests) can compare the timeline's
reconstructed down-time window against the :class:`DecidedTracker` truth
without re-running the scenario.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.exporters import JsonLinesSink
from repro.obs.registry import MetricsRegistry
from repro.sim.scenarios import SCENARIOS, run_partition_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Run a short traced partition scenario and export it "
                    "as JSON-lines."
    )
    parser.add_argument("out", help="path of the .jsonl export to write")
    parser.add_argument("--protocol", default="omni")
    parser.add_argument("--scenario", choices=SCENARIOS,
                        default="quorum_loss")
    parser.add_argument("--election-timeout-ms", type=float, default=50.0)
    parser.add_argument("--partition-ms", type=float, default=1_000.0,
                        help="partition duration (short: this is a smoke run)")
    parser.add_argument("--warmup-ms", type=float, default=500.0)
    parser.add_argument("--cooldown-ms", type=float, default=500.0)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    reg = MetricsRegistry()
    reg.enable_tracing()
    try:
        sink = JsonLinesSink(args.out)
    except OSError as exc:
        print(f"cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    reg.add_sink(sink)
    try:
        result = run_partition_scenario(
            args.protocol,
            args.scenario,
            election_timeout_ms=args.election_timeout_ms,
            partition_duration_ms=args.partition_ms,
            warmup_ms=args.warmup_ms,
            cooldown_ms=args.cooldown_ms,
            seed=args.seed,
            obs=reg,
        )
    finally:
        sink.close(reg)
    print(f"export={args.out}")
    print(f"protocol={result.protocol}")
    print(f"scenario={result.scenario}")
    print(f"partition_at_ms={result.partition_at_ms:.3f}")
    print(f"partition_end_ms={result.partition_end_ms:.3f}")
    print(f"downtime_ms={result.downtime_ms:.3f}")
    print(f"decided_before_partition={result.decided_before_partition}")
    print(f"decided_after_heal={result.decided_after_heal}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
