"""CLI: run a short seeded workload and export its windowed time series.

The obs-diff smoke check — one command produces a JSON-lines export (events
+ metrics snapshot + embedded ``"t": "series"`` window lines) that
``repro-obs series`` / ``repro-obs diff`` can analyze::

    python -m repro.tools.series_smoke a.jsonl --seed 7
    python -m repro.tools.series_smoke b.jsonl --seed 7
    python -m repro.tools.obs_report diff a.jsonl b.jsonl        # unchanged

    python -m repro.tools.series_smoke spike.jsonl --seed 7 --spike-ms 40
    python -m repro.tools.obs_report diff a.jsonl spike.jsonl    # regressed

The run is fully deterministic per seed: same seed → byte-identical event
stream → identical windows → ``diff`` reports "unchanged" for every
family. ``--spike-ms`` injects a delay spike (every link inflated by that
one-way latency) over ``[--spike-at-ms, +--spike-duration-ms)``, which
shows up as a commit-latency/phase regression localized to those windows.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.exporters import JsonLinesSink
from repro.obs.registry import MetricsRegistry
from repro.sim.harness import ExperimentConfig, build_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Run a short seeded workload with the series engine "
                    "attached and export events + windows as JSON-lines."
    )
    parser.add_argument("out", help="path of the .jsonl export to write")
    parser.add_argument("--protocol", default="omni")
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--election-timeout-ms", type=float, default=100.0)
    parser.add_argument("--one-way-ms", type=float, default=0.5)
    parser.add_argument("--duration-ms", type=float, default=8_000.0)
    parser.add_argument("--warmup-ms", type=float, default=1_000.0)
    parser.add_argument("--window-ms", type=float, default=250.0)
    parser.add_argument("--cp", type=int, default=8,
                        help="client's concurrent proposals")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--spike-ms", type=float, default=0.0,
                        help="inject a delay spike: add this one-way "
                             "latency to every link for the spike window")
    parser.add_argument("--spike-at-ms", type=float, default=4_000.0,
                        help="spike start (relative to run start)")
    parser.add_argument("--spike-duration-ms", type=float, default=1_500.0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    reg = MetricsRegistry()
    reg.enable_tracing()
    try:
        sink = JsonLinesSink(args.out)
    except OSError as exc:
        print(f"cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    reg.add_sink(sink)
    cfg = ExperimentConfig(
        protocol=args.protocol,
        num_servers=args.servers,
        election_timeout_ms=args.election_timeout_ms,
        one_way_ms=args.one_way_ms,
        seed=args.seed,
        initial_leader=1,
    )
    exp = build_experiment(cfg, obs=reg)
    collector = exp.attach_series(window_ms=args.window_ms)
    client = exp.make_client(args.cp)
    try:
        exp.cluster.run_for(args.warmup_ms)
        if args.spike_ms > 0.0:
            run_start = exp.queue.now
            pids = list(exp.cluster.pids)

            def _spike_on() -> None:
                for i, a in enumerate(pids):
                    for b in pids[i + 1:]:
                        exp.network.set_latency(
                            a, b, args.one_way_ms + args.spike_ms)

            def _spike_off() -> None:
                for i, a in enumerate(pids):
                    for b in pids[i + 1:]:
                        exp.network.clear_latency(a, b)

            exp.queue.schedule(run_start + args.spike_at_ms, _spike_on)
            exp.queue.schedule(
                run_start + args.spike_at_ms + args.spike_duration_ms,
                _spike_off)
        exp.cluster.run_for(args.duration_ms)
        windows = collector.finish(exp.queue.now)
        sink.write_series(windows)
    finally:
        sink.close(reg)
    print(f"export={args.out}")
    print(f"seed={args.seed}")
    print(f"windows={len(windows)}")
    print(f"decided={client.tracker.count}")
    print(f"throughput_per_s="
          f"{client.tracker.throughput(args.warmup_ms, exp.queue.now):.1f}")
    spiked = "yes" if args.spike_ms > 0.0 else "no"
    print(f"spike={spiked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
