"""CLI: run one reconfiguration experiment (paper section 7.3).

Example::

    python -m repro.tools.reconfig --protocol omni --replace majority \
        --preload 200000 --egress-kbps 2000
"""

from __future__ import annotations

import argparse

from repro.sim.reconfig_experiment import run_reconfiguration_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Run a reconfiguration experiment (Figure 9)."
    )
    parser.add_argument("--protocol", choices=("omni", "raft"), default="omni")
    parser.add_argument("--replace", choices=("one", "majority"), default="one")
    parser.add_argument("--preload", type=int, default=150_000,
                        help="pre-loaded log entries")
    parser.add_argument("--cp", type=int, default=64)
    parser.add_argument("--egress-kbps", type=float, default=2_000.0,
                        help="per-server egress in bytes per millisecond")
    parser.add_argument("--run-ms", type=float, default=25_000.0)
    parser.add_argument("--window-ms", type=float, default=2_000.0)
    parser.add_argument("--migration", choices=("parallel", "leader"),
                        default="parallel", help="Omni-Paxos migration scheme")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    result = run_reconfiguration_experiment(
        args.protocol,
        args.replace,
        concurrent_proposals=args.cp,
        preload_entries=args.preload,
        egress_bytes_per_ms=args.egress_kbps,
        run_ms=args.run_ms,
        window_ms=args.window_ms,
        migration_strategy=args.migration,
        seed=args.seed,
    )
    print(f"protocol={result.protocol} replace={result.replace} "
          f"migration={args.migration}")
    print(f"baseline throughput : {result.baseline_window:10.0f} decided/window")
    print(f"deepest drop        : {result.max_drop:10.0%}")
    print(f"degraded period     : {result.degraded_ms / 1000:10.1f} s")
    print(f"client down-time    : {result.downtime_ms / 1000:10.2f} s")
    print(f"busiest old peak IO : "
          f"{result.busiest_old_peak_window_bytes / 1e6:10.2f} MB/window")
    print(f"old servers total IO: "
          f"{result.old_servers_total_bytes / 1e6:10.1f} MB")
    if result.completed_at_ms is None:
        print("completed           :        never (within the run)")
        return 1
    print(f"completed           : {result.completed_at_ms / 1000:10.1f} s")
    print("windows (decided per window after the reconfiguration):")
    print("  " + " ".join(str(count) for _t, count in result.windows[:15]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
