"""CLI: summarize and reconstruct exported observability streams.

``repro-obs`` has six subcommands over a JSON-lines export (see
:class:`repro.obs.exporters.JsonLinesSink`)::

    repro-obs report run.jsonl --window-ms 5000     # paper-style summary
    repro-obs timeline run.jsonl --width 72         # ASCII scenario Gantt
    repro-obs spans run.jsonl --kind commit         # reconstructed spans
    repro-obs watch run.jsonl --at-ms 3000          # health dashboard
    repro-obs watch --demo quorum-loss              # live partitioned sim
    repro-obs series run.jsonl --window-ms 250      # sparkline lanes
    repro-obs diff a.jsonl b.jsonl                  # regression verdicts

The bare legacy form ``repro-obs run.jsonl`` still works and means
``report``. The numbers match the harness's own trackers exactly: both
the report and the timeline feed the exported ``ClientReplyDecided``
timestamps through the same :class:`~repro.sim.metrics.DecidedTracker`
the benchmarks use. ``diff`` exits non-zero when any metric family
regressed, so it gates CI directly.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigError
from repro.obs.exporters import read_jsonl
from repro.obs.report import summarize_run
from repro.obs.series import (diff_series, render_diff, series_from_events,
                              series_lanes)
from repro.obs.spans import SPAN_KINDS, assemble_spans
from repro.obs.timeline import render_spans, render_timeline
from repro.obs.watch import DEMO_SCENARIOS, watch_demo, watch_export

COMMANDS = ("report", "timeline", "spans", "watch", "series", "diff")


def _add_window_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="path to the .jsonl export")
    parser.add_argument("--start-ms", type=float, default=None,
                        help="observation start (default: first event)")
    parser.add_argument("--end-ms", type=float, default=None,
                        help="observation end (default: last event)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Summarize or reconstruct a JSON-lines observability "
                    "export.",
    )
    sub = parser.add_subparsers(dest="command")

    report = sub.add_parser(
        "report", help="per-window throughput / down-time / IO summary")
    _add_window_args(report)
    report.add_argument("--window-ms", type=float, default=5000.0,
                        help="window size for the decided series (paper: 5 s)")

    timeline = sub.add_parser(
        "timeline", help="ASCII Gantt: leader tenure, QC flags, down-time")
    _add_window_args(timeline)
    timeline.add_argument("--width", type=int, default=60,
                          help="timeline width in columns")
    timeline.add_argument("--settle-ms", type=float, default=500.0,
                          help="quiet gap that separates election episodes")

    spans = sub.add_parser(
        "spans", help="reconstructed spans as Gantt bars with percentiles")
    spans.add_argument("path", help="path to the .jsonl export")
    spans.add_argument("--width", type=int, default=60,
                       help="bar width in columns")
    spans.add_argument("--limit", type=int, default=30,
                       help="max bars per span kind")
    spans.add_argument("--kind", action="append", choices=SPAN_KINDS,
                       help="only these span kinds (repeatable)")
    spans.add_argument("--settle-ms", type=float, default=500.0,
                       help="quiet gap that separates election episodes")

    watch = sub.add_parser(
        "watch", help="health dashboard: connectivity matrix, leader lane, "
                      "lag, gray failures")
    watch.add_argument("path", nargs="?", default=None,
                       help="path to the .jsonl export (omit with --demo)")
    watch.add_argument("--at-ms", type=float, default=None,
                       help="render the state as of this time "
                            "(default: end of export)")
    watch.add_argument("--stale-after-ms", type=float, default=None,
                       help="mark reporters silent for this long as stale")
    watch.add_argument("--demo", choices=DEMO_SCENARIOS, default=None,
                       help="run a live partitioned sim instead of "
                            "replaying an export")
    watch.add_argument("--servers", type=int, default=5,
                       help="demo cluster size")
    watch.add_argument("--election-timeout-ms", type=float, default=100.0,
                       help="demo election timeout")
    watch.add_argument("--seed", type=int, default=0, help="demo seed")

    series = sub.add_parser(
        "series", help="windowed time series as sparkline lanes "
                       "(throughput, commit percentiles, queue backlog)")
    series.add_argument("path", help="path to the .jsonl export")
    series.add_argument("--window-ms", type=float, default=250.0,
                        help="window width (must match across runs "
                             "you intend to diff)")
    series.add_argument("--family", action="append", default=None,
                        help="only these metric families (repeatable; "
                             "default: an automatic selection)")

    diff = sub.add_parser(
        "diff", help="align two exports window-by-window and judge every "
                     "metric family (regressed/improved/unchanged); exits "
                     "non-zero on any regression")
    diff.add_argument("before", help="baseline .jsonl export")
    diff.add_argument("after", help="candidate .jsonl export")
    diff.add_argument("--window-ms", type=float, default=250.0,
                      help="window width used to build both series")
    diff.add_argument("--threshold", type=float, default=0.10,
                      help="relative change beyond which a family's mean "
                           "counts as regressed/improved")
    return parser


def _load(path: str):
    """``(events, metrics)`` or ``None`` after printing the error."""
    try:
        return read_jsonl(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
    except ConfigError as exc:
        print(f"{path}: {exc}", file=sys.stderr)
    return None


def _cmd_report(args) -> int:
    if args.window_ms <= 0:
        print("--window-ms must be positive", file=sys.stderr)
        return 2
    if (args.start_ms is not None and args.end_ms is not None
            and args.start_ms >= args.end_ms):
        print("--start-ms must be before --end-ms", file=sys.stderr)
        return 2
    loaded = _load(args.path)
    if loaded is None:
        return 1
    events, metrics = loaded
    if not events and not metrics:
        print(f"{args.path}: export is empty — no events or metrics found "
              "(was the run captured with an enabled registry?)",
              file=sys.stderr)
        return 1
    try:
        report = summarize_run(
            events,
            metrics,
            window_ms=args.window_ms,
            start_ms=args.start_ms,
            end_ms=args.end_ms,
        )
    except ConfigError as exc:  # e.g. one-sided bound past the event span
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render())
    return 0


def _cmd_timeline(args) -> int:
    if args.width < 10:
        print("--width must be at least 10", file=sys.stderr)
        return 2
    loaded = _load(args.path)
    if loaded is None:
        return 1
    events, _metrics = loaded
    if not events:
        print(f"{args.path}: no events found", file=sys.stderr)
        return 1
    spans = assemble_spans(events, settle_ms=args.settle_ms)
    print(render_timeline(
        events,
        width=args.width,
        start_ms=args.start_ms,
        end_ms=args.end_ms,
        spans=spans,
    ))
    return 0


def _cmd_spans(args) -> int:
    if args.width < 10:
        print("--width must be at least 10", file=sys.stderr)
        return 2
    loaded = _load(args.path)
    if loaded is None:
        return 1
    events, _metrics = loaded
    spans = assemble_spans(events, settle_ms=args.settle_ms)
    if not spans:
        print(f"{args.path}: no spans could be reconstructed "
              "(was tracing enabled?)", file=sys.stderr)
        return 1
    print(render_spans(spans, width=args.width, limit=args.limit,
                       kinds=args.kind))
    return 0


def _cmd_watch(args) -> int:
    if args.demo is not None:
        disagreements = watch_demo(
            scenario=args.demo,
            num_servers=args.servers,
            election_timeout_ms=args.election_timeout_ms,
            seed=args.seed,
            out=sys.stdout,
        )
        # The demo *must* catch the belief/truth gap right after the
        # netsplit; zero means the health layer is broken (CI greps this).
        return 0 if disagreements > 0 else 1
    if args.path is None:
        print("watch needs an export path (or --demo <scenario>)",
              file=sys.stderr)
        return 2
    loaded = _load(args.path)
    if loaded is None:
        return 1
    events, _metrics = loaded
    try:
        print(watch_export(events, at_ms=args.at_ms,
                           stale_after_ms=args.stale_after_ms))
    except ConfigError as exc:
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_series(args) -> int:
    if args.window_ms <= 0:
        print("--window-ms must be positive", file=sys.stderr)
        return 2
    loaded = _load(args.path)
    if loaded is None:
        return 1
    events, _metrics = loaded
    if not events:
        print(f"{args.path}: no events found", file=sys.stderr)
        return 1
    windows = series_from_events(events, window_ms=args.window_ms)
    if not windows:
        print(f"{args.path}: not enough history for one "
              f"{args.window_ms:g} ms window", file=sys.stderr)
        return 1
    print(f"{len(windows)} windows x {args.window_ms:g} ms "
          f"[{windows[0].start_ms:.0f} .. {windows[-1].end_ms:.0f} ms]")
    for line in series_lanes(windows, families=args.family):
        print(line)
    return 0


def _cmd_diff(args) -> int:
    if args.window_ms <= 0:
        print("--window-ms must be positive", file=sys.stderr)
        return 2
    series = []
    for path in (args.before, args.after):
        loaded = _load(path)
        if loaded is None:
            return 1
        events, _metrics = loaded
        windows = series_from_events(events, window_ms=args.window_ms)
        if not windows:
            print(f"{path}: not enough history for one "
                  f"{args.window_ms:g} ms window", file=sys.stderr)
            return 1
        series.append(windows)
    diff = diff_series(series[0], series[1], threshold=args.threshold)
    for line in render_diff(diff):
        print(line)
    return 1 if diff.verdict == "regressed" else 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Legacy form: `repro-obs run.jsonl [...]` means `repro-obs report ...`.
    if argv and argv[0] not in COMMANDS and not argv[0].startswith("-"):
        argv.insert(0, "report")
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    handler = {
        "report": _cmd_report,
        "timeline": _cmd_timeline,
        "spans": _cmd_spans,
        "watch": _cmd_watch,
        "series": _cmd_series,
        "diff": _cmd_diff,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        raise SystemExit(0)
