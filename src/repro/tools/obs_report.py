"""CLI: summarize an exported observability stream (``repro-obs``).

Turns a JSON-lines export (see :class:`repro.obs.exporters.JsonLinesSink`)
into the per-window throughput / down-time / IO summary the paper reports::

    python -m repro.tools.obs_report run.jsonl --window-ms 5000
    repro-obs run.jsonl --start-ms 2000 --end-ms 7000

The numbers match the harness's own trackers exactly: the report feeds the
exported ``ClientReplyDecided`` timestamps through the same
:class:`~repro.sim.metrics.DecidedTracker` the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigError
from repro.obs.exporters import read_jsonl
from repro.obs.report import summarize_run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Summarize a JSON-lines observability export."
    )
    parser.add_argument("path", help="path to the .jsonl export")
    parser.add_argument("--window-ms", type=float, default=5000.0,
                        help="window size for the decided series (paper: 5 s)")
    parser.add_argument("--start-ms", type=float, default=None,
                        help="observation start (default: first event)")
    parser.add_argument("--end-ms", type=float, default=None,
                        help="observation end (default: last event)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.window_ms <= 0:
        print("--window-ms must be positive", file=sys.stderr)
        return 2
    if (args.start_ms is not None and args.end_ms is not None
            and args.start_ms >= args.end_ms):
        print("--start-ms must be before --end-ms", file=sys.stderr)
        return 2
    try:
        events, metrics = read_jsonl(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except ConfigError as exc:
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    if not events and not metrics:
        print(f"{args.path}: no events or metrics found")
        return 1
    try:
        report = summarize_run(
            events,
            metrics,
            window_ms=args.window_ms,
            start_ms=args.start_ms,
            end_ms=args.end_ms,
        )
    except ConfigError as exc:  # e.g. one-sided bound past the event span
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render())
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        raise SystemExit(0)
