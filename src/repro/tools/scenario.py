"""CLI: run one partial-connectivity scenario (paper section 7.2).

Example::

    python -m repro.tools.scenario --protocol raft --scenario chained \
        --timeout-ms 100 --duration-ms 10000 --seeds 1 2 3
"""

from __future__ import annotations

import argparse

from repro.sim.harness import PROTOCOLS
from repro.sim.scenarios import SCENARIOS, run_partition_scenario
from repro.util.stats import mean_ci


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Run a partial-connectivity scenario experiment."
    )
    parser.add_argument("--protocol", choices=PROTOCOLS, default="omni")
    parser.add_argument("--scenario", choices=SCENARIOS, default="quorum_loss")
    parser.add_argument("--timeout-ms", type=float, default=100.0,
                        help="election timeout / heartbeat period")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="partition duration (default: 40 timeouts)")
    parser.add_argument("--cp", type=int, default=8,
                        help="concurrent proposals kept in flight")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    downtimes = []
    deadlocks = 0
    decided = []
    for seed in args.seeds:
        result = run_partition_scenario(
            args.protocol,
            args.scenario,
            election_timeout_ms=args.timeout_ms,
            partition_duration_ms=args.duration_ms,
            concurrent_proposals=args.cp,
            seed=seed,
        )
        decided.append(result.decided_during_partition)
        if result.recovered:
            downtimes.append(result.downtime_ms)
        else:
            deadlocks += 1
        state = "recovered" if result.recovered else "UNAVAILABLE"
        print(f"seed {seed}: {state}  downtime={result.downtime_ms:8.0f} ms "
              f"decided={result.decided_during_partition}")
    print()
    print(f"protocol={args.protocol} scenario={args.scenario} "
          f"timeout={args.timeout_ms:.0f} ms")
    if deadlocks == len(args.seeds):
        print("verdict : UNAVAILABLE for the whole partition (every seed)")
    else:
        ci = mean_ci(downtimes)
        print(f"downtime: {ci} ms "
              f"({ci.mean / args.timeout_ms:.1f} election timeouts)")
    print(f"decided : {mean_ci([float(d) for d in decided])}")
    return 0 if deadlocks in (0, len(args.seeds)) else 1


if __name__ == "__main__":
    raise SystemExit(main())
