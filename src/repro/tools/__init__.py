"""Command-line experiment runners.

Usage::

    python -m repro.tools.scenario --protocol omni --scenario chained
    python -m repro.tools.reconfig --protocol raft --replace majority
    python -m repro.tools.throughput --protocol multipaxos --cp 128 --wan

Each tool builds the same experiments as the benchmark suite and prints a
human-readable report; they are the quickest way to poke at a single
configuration without going through pytest.
"""
