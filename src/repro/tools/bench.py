"""``repro-bench``: the hot-path benchmark and regression CLI.

Subcommands::

    repro-bench run      --out bench.json [--budget default] [--trace]
    repro-bench verify   [--budget smoke]          # determinism double-run
    repro-bench compare  --before a.json --after b.json --out BENCH_PR4.json
    repro-bench smoke    --baseline benchmarks/bench_baseline.json

``run`` executes the micro + macro suites and writes one JSON document.
``verify`` runs everything twice with the same seed and fails unless every
deterministic counter (event/message/decided counts, decided-log digests)
matches — the check that optimizations are behaviour-preserving.
``compare`` merges a before/after pair into a single document with
per-bench speedups and the cross-document behaviour check.
``smoke`` is the CI entry point: a tiny-budget run diffed against the
committed counter baseline (catching silent behaviour drift), with
``--write-baseline`` to refresh the baseline intentionally.

See ``docs/PERFORMANCE.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Tuple

from repro.bench.macro import run_macro_suite, run_runtime_suite
from repro.bench.micro import run_micro_suite
from repro.bench.runner import (
    BUDGETS,
    bench_meta,
    compare_results,
    deterministic_view,
    load_json,
    save_json,
)

SECTIONS = ("micro", "macro", "runtime")


def _run_document(budget_name: str, seed: int, trace: bool = False,
                  wire: str = "binary",
                  sections: Tuple[str, ...] = SECTIONS) -> Dict[str, Any]:
    budget = BUDGETS[budget_name]
    meta = bench_meta(budget_name, seed)
    meta["wire"] = wire
    doc: Dict[str, Any] = {"meta": meta}
    if "micro" in sections:
        doc["micro"] = run_micro_suite(budget, seed=seed)
    if "macro" in sections:
        doc["macro"] = run_macro_suite(budget, seed=seed, trace=trace)
    if "runtime" in sections:
        doc["runtime"] = run_runtime_suite(budget, seed=seed, wire=wire)
    return doc


def _print_summary(doc: Dict[str, Any]) -> None:
    for section in SECTIONS:
        for name, result in doc.get(section, {}).items():
            line = (f"{section:>7s}  {name:<16s} "
                    f"{result['ops_per_sec']:>12,.0f} ops/s "
                    f"({result['wall_s']:.3f}s)")
            if "decided_per_virtual_s" in result:
                line += f"  decided/s(virtual)={result['decided_per_virtual_s']:,.0f}"
            if "wire" in result:
                line += f"  wire={result['wire']}"
            print(line)


def cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "uvloop", False):
        from repro.runtime import install_uvloop
        print(f"uvloop: {'installed' if install_uvloop() else 'unavailable'}")
    sections = (tuple(s.strip() for s in args.sections.split(","))
                if args.sections else SECTIONS)
    unknown = [s for s in sections if s not in SECTIONS]
    if unknown:
        print(f"unknown sections: {', '.join(unknown)} "
              f"(choose from {', '.join(SECTIONS)})")
        return 2
    doc = _run_document(args.budget, args.seed, trace=args.trace,
                        wire=args.wire, sections=sections)
    _print_summary(doc)
    if args.out:
        save_json(args.out, doc)
        print(f"wrote {args.out}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    first = _run_document(args.budget, args.seed)
    second = _run_document(args.budget, args.seed)
    a, b = deterministic_view(first), deterministic_view(second)
    mismatches = sorted(n for n in set(a) | set(b) if a.get(n) != b.get(n))
    if mismatches:
        print("DETERMINISM FAILURE: counters drifted between identical runs")
        for name in mismatches:
            print(f"  {name}:\n    run1={a.get(name)}\n    run2={b.get(name)}")
        return 1
    print(f"determinism OK: {len(a)} benches, all counters and "
          "decided-log digests identical across two runs")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    before = load_json(args.before)
    after = load_json(args.after)
    comparison = compare_results(before, after)
    doc = {
        "meta": {
            "before": before.get("meta", {}),
            "after": after.get("meta", {}),
        },
        "before": {k: before[k] for k in SECTIONS if k in before},
        "after": {k: after[k] for k in SECTIONS if k in after},
        "comparison": comparison,
    }
    for name, ratio in sorted(comparison["speedup"].items()):
        print(f"{name:<24s} {ratio:5.2f}x")
    for name, entry in sorted(comparison.get("phase_attribution",
                                             {}).items()):
        for phase, delta in entry["phases"].items():
            if delta["verdict"] == "unchanged":
                continue
            print(f"{name}: phase {phase} {delta['verdict']} "
                  f"({delta['before_mean_ms']:g} -> "
                  f"{delta['after_mean_ms']:g} ms, "
                  f"{delta['change']:+.1%})")
        dominant = entry.get("dominant_regressed_phase")
        if dominant:
            print(f"{name}: dominant regressed phase: {dominant}")
    if comparison["behaviour_identical"]:
        print("behaviour check OK: deterministic counters and decided-log "
              "digests identical before/after")
    else:
        print("behaviour check FAILED; mismatched counters:")
        for name in comparison["counter_mismatches"]:
            print(f"  {name}")
    if args.out:
        save_json(args.out, doc)
        print(f"wrote {args.out}")
    return 0 if comparison["behaviour_identical"] else 1


def cmd_smoke(args: argparse.Namespace) -> int:
    doc = _run_document("smoke", args.seed)
    _print_summary(doc)
    if args.out:
        save_json(args.out, doc)
        print(f"wrote {args.out}")
    view = deterministic_view(doc)
    if args.write_baseline:
        save_json(args.baseline, {"counters": view})
        print(f"wrote baseline {args.baseline}")
        return 0
    baseline = load_json(args.baseline)["counters"]
    mismatches = sorted(
        n for n in set(view) | set(baseline)
        if view.get(n) != baseline.get(n)
    )
    if mismatches:
        print("BASELINE DRIFT: deterministic counters differ from "
              f"{args.baseline}")
        for name in mismatches:
            print(f"  {name}:\n    baseline={baseline.get(name)}"
                  f"\n    current ={view.get(name)}")
        print("If the behaviour change is intentional, refresh with "
              "`repro-bench smoke --write-baseline`.")
        return 1
    print(f"baseline OK: {len(view)} benches match {args.baseline}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Deterministic hot-path benchmarks for the simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run",
                           help="run the micro + macro + runtime suites")
    run_p.add_argument("--out", default=None, help="write JSON document here")
    run_p.add_argument("--budget", choices=sorted(BUDGETS), default="default")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--trace", action="store_true",
                       help="enable causal tracing for the macro runs "
                            "(adds a per-phase commit breakdown; slower)")
    run_p.add_argument("--wire", choices=("binary", "pickle"),
                       default="binary",
                       help="wire stack for the runtime benches: 'binary' "
                            "is the full PR-9 path (binary codec, "
                            "coalescing, pipelining), 'pickle' the legacy "
                            "pre-PR-9 path")
    run_p.add_argument("--sections", default=None,
                       help="comma-separated subset of "
                            f"{{{','.join(SECTIONS)}}} to run")
    run_p.add_argument("--uvloop", action="store_true",
                       help="install uvloop's loop policy first (no-op "
                            "when the package is absent)")
    run_p.set_defaults(func=cmd_run)

    verify_p = sub.add_parser(
        "verify", help="double-run determinism check (same seed twice)")
    verify_p.add_argument("--budget", choices=sorted(BUDGETS),
                          default="smoke")
    verify_p.add_argument("--seed", type=int, default=0)
    verify_p.set_defaults(func=cmd_verify)

    cmp_p = sub.add_parser(
        "compare", help="merge before/after runs with speedups")
    cmp_p.add_argument("--before", required=True)
    cmp_p.add_argument("--after", required=True)
    cmp_p.add_argument("--out", default=None)
    cmp_p.set_defaults(func=cmd_compare)

    smoke_p = sub.add_parser(
        "smoke", help="tiny-budget run diffed against a counter baseline")
    smoke_p.add_argument("--baseline",
                         default="benchmarks/bench_baseline.json")
    smoke_p.add_argument("--out", default=None)
    smoke_p.add_argument("--seed", type=int, default=0)
    smoke_p.add_argument("--write-baseline", action="store_true",
                         help="refresh the baseline instead of diffing")
    smoke_p.set_defaults(func=cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
