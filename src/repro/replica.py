"""The driving interface every protocol replica implements.

The simulator (:mod:`repro.sim`) and the asyncio runtime
(:mod:`repro.runtime`) drive protocol instances exclusively through this
interface, so Omni-Paxos, Raft, Multi-Paxos and VR are all interchangeable
in every experiment harness.

The contract is sans-io and pull-based:

- the harness calls :meth:`tick` regularly (timer resolution) and
  :meth:`on_message` for each delivered message,
- after any call the harness drains :meth:`take_outbox` and delivers the
  ``(dst, message)`` pairs subject to the network model,
- decided entries are drained with :meth:`take_decided` as
  ``(global_index, entry)`` pairs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Tuple


class Replica(ABC):
    """A protocol replica the experiment harnesses can drive."""

    @property
    @abstractmethod
    def pid(self) -> int:
        """This server's unique positive id."""

    @property
    @abstractmethod
    def members(self) -> Tuple[int, ...]:
        """Current configuration member pids (including this server)."""

    @property
    @abstractmethod
    def is_leader(self) -> bool:
        """True when this server currently acts as the leader."""

    @property
    @abstractmethod
    def leader_pid(self) -> Optional[int]:
        """Best-known leader pid, or None if unknown."""

    @abstractmethod
    def start(self, now_ms: float) -> None:
        """Arm timers; called once before any tick."""

    @abstractmethod
    def tick(self, now_ms: float) -> None:
        """Advance protocol timers to ``now_ms``."""

    @abstractmethod
    def on_message(self, src: int, msg: Any, now_ms: float) -> None:
        """Handle one message delivered from peer ``src``."""

    @abstractmethod
    def propose(self, entry: Any, now_ms: float) -> None:
        """Submit a client entry for replication.

        Implementations buffer or forward when not the leader; they raise
        :class:`repro.errors.StoppedError` / :class:`repro.errors.NotLeaderError`
        only when the entry cannot possibly be handled here.
        """

    def propose_batch(self, entries: List[Any], now_ms: float) -> None:
        """Submit several entries at once.

        Protocols override this to replicate the batch in a single message;
        the default just loops over :meth:`propose`.
        """
        for entry in entries:
            self.propose(entry, now_ms)

    @abstractmethod
    def take_outbox(self) -> List[Tuple[int, Any]]:
        """Drain pending outgoing ``(dst, message)`` pairs."""

    @abstractmethod
    def take_decided(self) -> List[Tuple[int, Any]]:
        """Drain newly decided ``(global_index, entry)`` pairs."""

    # -- introspection (optional override) ---------------------------------

    def status(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of this replica's health view.

        The admin endpoint and the sim harness surface this verbatim;
        protocols override it to add their connectivity/ballot view. The
        default reports only the interface-level facts.
        """
        return {
            "pid": self.pid,
            "protocol": type(self).__name__,
            "phase": "leader" if self.is_leader else "follower",
            "leader": self.leader_pid if self.leader_pid is not None else 0,
        }

    # -- failure handling (optional overrides) -----------------------------

    def on_session_drop(self, peer: int, now_ms: float) -> None:
        """A transport session to ``peer`` dropped and was re-established."""

    def crash(self) -> None:
        """The server lost its volatile state (the harness stops driving it)."""

    def recover(self, now_ms: float) -> None:
        """Restart after a crash, reloading persistent state."""
