"""repro — a reproduction of Omni-Paxos (EuroSys 2023).

Omni-Paxos is a replicated-state-machine system that stays available under
*partial* network partitions: it only needs a single quorum-connected server
to make progress, where Raft, VR, Zab and Multi-Paxos need a fully-connected
majority in at least some scenarios.

Quickstart::

    from repro import OmniPaxosServer, OmniPaxosConfig, ClusterConfig, Command
    from repro.sim import EventQueue, SimNetwork, SimCluster

    cluster_cfg = ClusterConfig(config_id=0, servers=(1, 2, 3))
    queue = EventQueue()
    net = SimNetwork(queue)
    servers = {
        pid: OmniPaxosServer(OmniPaxosConfig(pid=pid, cluster=cluster_cfg))
        for pid in cluster_cfg.servers
    }
    sim = SimCluster(servers, net, queue)
    sim.start()
    sim.run_for(1_000)           # elect a leader
    leader = sim.leaders()[0]
    sim.propose(leader, Command(b"hello"))
    sim.run_for(100)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
harnesses that regenerate every table and figure of the paper.
"""

from repro.errors import (
    ConfigError,
    MigrationError,
    NotLeaderError,
    ReproError,
    StoppedError,
    StorageError,
    TransportError,
)
from repro.omni import (
    BOTTOM,
    Ballot,
    BallotLeaderElection,
    BLEConfig,
    ClusterConfig,
    Command,
    FileStorage,
    InMemoryStorage,
    OmniPaxosConfig,
    OmniPaxosServer,
    SequencePaxos,
    SequencePaxosConfig,
    StopSign,
    Storage,
    is_stopsign,
)
from repro.replica import Replica

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigError",
    "StorageError",
    "StoppedError",
    "NotLeaderError",
    "MigrationError",
    "TransportError",
    # core types
    "Ballot",
    "BOTTOM",
    "Command",
    "StopSign",
    "is_stopsign",
    "Storage",
    "InMemoryStorage",
    "FileStorage",
    # protocols
    "BallotLeaderElection",
    "BLEConfig",
    "SequencePaxos",
    "SequencePaxosConfig",
    "OmniPaxosServer",
    "OmniPaxosConfig",
    "ClusterConfig",
    "Replica",
]
