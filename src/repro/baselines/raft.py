"""Raft, with optional PreVote and CheckQuorum — the paper's main baseline.

This is a faithful implementation of the Raft rules that produce the
behaviours the paper demonstrates under partial connectivity:

- randomized election timeouts in ``[T, 2T)`` (the source of the high
  variance the paper records in the quorum-loss and chained scenarios),
- the *log up-to-date* voting rule ("max log"), which deadlocks Raft in the
  constrained-election scenario because the only quorum-connected server has
  a stale log,
- term propagation through rejected AppendEntries / RequestVote, the
  gossip-style channel behind the chained livelock,
- PreVote (Raft thesis section 9.6, with leader stickiness) and CheckQuorum,
  the recent mitigations [Jensen et al. 2021] that the paper evaluates as
  "Raft PV+CQ".

Reconfiguration follows the leader-centric practice of Raft systems: the
leader appends a :class:`RaftConfigChange` entry, replicates to the union of
old and new members — which means it alone streams the whole log to every
joining server — and the new member set takes effect once the entry commits.
Entries beyond the config entry need a majority of the *new* set, which is
why replacing a majority causes full downtime until a new server has caught
up (paper section 7.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError, NotLeaderError
from repro.obs.events import (
    BallotElected,
    EntryApplied,
    HeartbeatViewReported,
    ProposalAppended,
    QuorumAccepted,
    RecoveryCompleted,
    RecoveryStarted,
    RoleChanged,
)
from repro.obs.health import GrayFailureDetector, SelfDegradationMonitor
from repro.obs.registry import Instrumented, MetricsRegistry
from repro.obs.spans import entry_trace_id
from repro.omni.entry import SnapshotInstalled, entry_wire_size
from repro.replica import Replica
from repro.util.rng import spawn_rng
from repro.util.compat import SLOTTED

_HEADER = 24


class RaftRole(enum.Enum):
    FOLLOWER = "follower"
    PRECANDIDATE = "precandidate"
    CANDIDATE = "candidate"
    LEADER = "leader"


# --------------------------------------------------------------------------
# wire messages
# --------------------------------------------------------------------------

@dataclass(frozen=True, **SLOTTED)
class RequestVote:
    term: int
    candidate: int
    last_log_idx: int
    last_log_term: int
    prevote: bool = False

    def wire_size(self) -> int:
        return _HEADER + 33


@dataclass(frozen=True, **SLOTTED)
class RequestVoteReply:
    term: int
    granted: bool
    prevote: bool = False

    def wire_size(self) -> int:
        return _HEADER + 10


@dataclass(frozen=True, **SLOTTED)
class AppendEntries:
    term: int
    leader: int
    prev_idx: int
    prev_term: int
    entries: Tuple["RaftSlot", ...]
    leader_commit: int
    #: Per-follower send sequence number, echoed in the reply so the leader
    #: can discard stale rejections (flow control, as in raft-rs).
    seq: int = 0

    def wire_size(self) -> int:
        payload = sum(8 + entry_wire_size(slot.entry) for slot in self.entries)
        return _HEADER + 44 + payload


@dataclass(frozen=True, **SLOTTED)
class AppendEntriesReply:
    term: int
    success: bool
    #: On success: the follower's new log length. On failure: a hint of
    #: where the leader should retry from (the follower's log length).
    match_idx: int
    seq: int = 0

    def wire_size(self) -> int:
        return _HEADER + 21


@dataclass(frozen=True, **SLOTTED)
class RaftSlot:
    """One log slot: the term it was appended in plus the client entry."""

    term: int
    entry: Any


@dataclass(frozen=True, **SLOTTED)
class TimeoutNow:
    """Leader -> chosen successor: campaign immediately (leadership
    transfer, as in etcd/TiKV). The recipient skips PreVote — the sender is
    abdicating on purpose."""

    term: int

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass(frozen=True, **SLOTTED)
class RaftConfigChange:
    """A membership-change log entry (takes effect when committed)."""

    servers: Tuple[int, ...]

    def wire_size(self) -> int:
        return 16 + 8 * len(self.servers)


@dataclass(frozen=True, **SLOTTED)
class InstallSnapshot:
    """Leader -> far-behind follower: state replacing entries
    ``[0, last_idx)`` (whose final term was ``last_term``)."""

    term: int
    leader: int
    last_idx: int
    last_term: int
    state: Any
    leader_commit: int

    def wire_size(self) -> int:
        sizer = getattr(self.state, "wire_size", None)
        if sizer is not None:
            return _HEADER + 40 + sizer()
        try:
            return _HEADER + 40 + max(len(self.state), 16)
        except TypeError:
            return _HEADER + 104


# --------------------------------------------------------------------------
# configuration
# --------------------------------------------------------------------------

@dataclass(frozen=True, **SLOTTED)
class RaftConfig:
    """Static configuration of one Raft server.

    ``election_timeout_ms`` is the base T; actual timeouts randomize in
    ``[T, 2T)``. The heartbeat interval defaults to T/5 like most
    deployments. ``prevote``/``check_quorum`` enable the PV+CQ variant.
    """

    pid: int
    voters: Tuple[int, ...]
    election_timeout_ms: float = 500.0
    heartbeat_ms: Optional[float] = None
    prevote: bool = False
    check_quorum: bool = False
    #: Opt-in graceful degradation (the Raft analogue of Omni's
    #: gray-aware BLE): the server watches its own tick cadence through a
    #: :class:`~repro.obs.health.SelfDegradationMonitor`; while it scores
    #: itself fail-slow it declines candidacy and, if leader, steps down
    #: voluntarily — so a 100×-slowed leader hands over instead of
    #: heartbeating just often enough to hold the cluster hostage.
    #: Default off; default behaviour is untouched.
    gray_aware: bool = False
    max_entries_per_msg: int = 4096
    #: Deterministic fold ``(entries, prev_state) -> state``; enables
    #: snapshot-based catch-up (and is required for log compaction).
    snapshotter: Optional[Any] = None
    #: Ship an InstallSnapshot instead of streaming when a follower is
    #: more than this many entries behind the leader's snapshot point.
    snapshot_catchup_threshold: Optional[int] = None
    seed: int = 0
    initial_leader: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pid <= 0:
            raise ConfigError("pids must be positive")
        if self.voters and self.pid not in self.voters:
            # A brand-new server joining via reconfiguration starts with an
            # empty voter set and learns membership from the log.
            raise ConfigError("pid must be in voters (or voters empty for joiners)")
        if self.election_timeout_ms <= 0:
            raise ConfigError("election_timeout_ms must be positive")
        if self.max_entries_per_msg <= 0:
            raise ConfigError("max_entries_per_msg must be positive")

    @property
    def heartbeat_interval(self) -> float:
        if self.heartbeat_ms is not None:
            return self.heartbeat_ms
        return max(self.election_timeout_ms / 5.0, 1.0)


class RaftLog:
    """Raft's log with stable (logical) indices across snapshot installs.

    Indices are 1-based matchers externally (``len`` = last index), slots
    stored 0-based internally from ``base``. After ``install(base,
    last_term)`` the entries below ``base`` are gone, represented by the
    snapshot; ``term_at(base)`` still answers with the snapshot's last term
    so AppendEntries consistency checks keep working at the boundary.
    """

    def __init__(self) -> None:
        self._slots: List[RaftSlot] = []
        self._base = 0          # logical count of snapshotted entries
        self._base_term = 0     # term of the last snapshotted entry

    def __len__(self) -> int:
        return self._base + len(self._slots)

    @property
    def base(self) -> int:
        return self._base

    @property
    def base_term(self) -> int:
        return self._base_term

    def append(self, slot: RaftSlot) -> None:
        self._slots.append(slot)

    def extend(self, slots) -> None:
        self._slots.extend(slots)

    def term_at(self, idx: int) -> int:
        """Term of the entry at 1-based index ``idx`` (0 -> term 0)."""
        if idx == 0:
            return 0
        if idx == self._base:
            return self._base_term
        if idx < self._base:
            raise IndexError(f"index {idx} was snapshotted away")
        return self._slots[idx - self._base - 1].term

    def slot_at(self, idx: int) -> RaftSlot:
        """The slot at 1-based index ``idx``."""
        if idx <= self._base:
            raise IndexError(f"index {idx} was snapshotted away")
        return self._slots[idx - self._base - 1]

    def slice(self, lo: int, hi: int) -> Tuple[RaftSlot, ...]:
        """Slots covering 1-based indices ``(lo, hi]``."""
        return tuple(self._slots[max(lo - self._base, 0):hi - self._base])

    def truncate_from(self, idx: int) -> None:
        """Drop every entry with 1-based index > ``idx``."""
        del self._slots[max(idx - self._base, 0):]

    def covered_by_snapshot(self, idx: int) -> bool:
        """Whether 1-based index ``idx``'s entry is inside the snapshot."""
        return idx <= self._base

    def install(self, base: int, base_term: int) -> None:
        """Adopt a snapshot covering the first ``base`` entries."""
        if base <= self._base:
            return
        if base < len(self):
            # Keep the tail beyond the snapshot point.
            del self._slots[:base - self._base]
        else:
            self._slots = []
        self._base = base
        self._base_term = base_term

    def entries_from(self, lo: int) -> Tuple[RaftSlot, ...]:
        return self.slice(lo, len(self))


@dataclass
class RaftStats:
    elections_started: int = 0
    prevotes_started: int = 0
    leader_changes: int = 0
    stepdowns_check_quorum: int = 0
    stepdowns_self_degraded: int = 0
    max_term_seen: int = 0
    snapshots_sent: int = 0


# --------------------------------------------------------------------------
# the replica
# --------------------------------------------------------------------------

class RaftReplica(Replica, Instrumented):
    """One Raft server (sans-io)."""

    def __init__(self, config: RaftConfig):
        self._config = config
        self._rng = spawn_rng(config.seed, "raft", config.pid)
        # Persistent state (survives crash via `crash`/`recover`).
        self._term = 0
        self._voted_for: Optional[int] = None
        self._log = RaftLog()
        # Volatile state.
        self._role = RaftRole.FOLLOWER
        self._leader_id: Optional[int] = None
        self._commit_idx = 0
        self._applied_idx = 0
        self._voters: Optional[Tuple[int, ...]] = config.voters or None
        #: Uncommitted config change: (entry index, new member set).
        self._pending_config: Optional[Tuple[int, Tuple[int, ...]]] = None
        #: Everyone we replicate to (voters plus joining servers).
        self._replication_targets: Set[int] = set(config.voters)
        self._replication_targets.discard(config.pid)
        # Timers.
        self._election_deadline = 0.0
        self._heartbeat_deadline = 0.0
        self._last_leader_contact = -1e18
        # Candidate state.
        self._votes: Set[int] = set()
        self._prevotes: Set[int] = set()
        # Leader state.
        self._next_idx: Dict[int, int] = {}
        self._match_idx: Dict[int, int] = {}
        self._last_heard: Dict[int, float] = {}
        self._append_seq: Dict[int, int] = {}
        self._outbox: List[Tuple[int, Any]] = []
        self._decided_out: List[Tuple[int, Any]] = []
        # Transport snapshot (lazily folded committed prefix).
        self._snap_state: Any = None
        self._snap_idx = 0
        self._snap_term = 0
        self._crashed = False
        self._started = False
        #: Tracing-only: fan-out times of in-flight batches, and the
        #: start of an open crash recovery (see repro.obs.spans).
        self._trace_fanout: List[Tuple[int, float]] = []
        self._trace_recovery: Optional[float] = None
        # Health observatory: gray-failure scoring of peers, and the
        # cadence of HeartbeatViewReported emissions (Raft has no
        # heartbeat *rounds*, so views report on the heartbeat interval).
        self._gray = GrayFailureDetector(
            pid=config.pid,
            expected_interval_ms=config.heartbeat_interval,
        )
        #: Gray-aware mode only: scores this server's own tick cadence.
        #: Self-baseline mode (no expected interval) because the driver's
        #: tick period is its own healthy reference — whatever cadence the
        #: harness drives at, a fail-slow node stretches it by the
        #: slowdown factor.
        self._self_monitor: Optional[SelfDegradationMonitor] = (
            SelfDegradationMonitor(config.pid, expected_interval_ms=None)
            if config.gray_aware else None
        )
        self._last_health_at: Optional[float] = None
        self._health_round = 0
        self.stats = RaftStats()

    def _on_observability(self, registry: MetricsRegistry) -> None:
        self._gray.bind(registry)
        if self._self_monitor is not None:
            self._self_monitor.bind(registry)

    # ------------------------------------------------------------------
    # Replica interface: accessors
    # ------------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self._config.pid

    @property
    def members(self) -> Tuple[int, ...]:
        if self._voters is None:
            return (self.pid,)
        return self._voters

    @property
    def is_leader(self) -> bool:
        return self._role is RaftRole.LEADER

    @property
    def leader_pid(self) -> Optional[int]:
        return self.pid if self.is_leader else self._leader_id

    @property
    def term(self) -> int:
        return self._term

    @property
    def role(self) -> RaftRole:
        return self._role

    @property
    def commit_idx(self) -> int:
        return self._commit_idx

    @property
    def log_len(self) -> int:
        return len(self._log)

    @property
    def gray_detector(self) -> GrayFailureDetector:
        """This server's gray-failure detector (health observatory)."""
        return self._gray

    @property
    def self_degraded(self) -> bool:
        """Whether this server currently scores *itself* fail-slow.

        Always False outside ``gray_aware`` mode."""
        return (self._self_monitor is not None
                and self._self_monitor.degraded)

    def _peers_heard(self, now_ms: float) -> Tuple[int, ...]:
        """Peers heard within one election timeout.

        A Raft leader hears every follower (AppendEntriesReply); a
        follower only hears the leader — the matrix a Raft cluster can
        assemble is inherently star-shaped, which is exactly the
        comparison point against Omni-Paxos's all-pairs BLE rounds.
        """
        window = self._config.election_timeout_ms
        if self._role is RaftRole.LEADER:
            return tuple(sorted(
                p for p, at in self._last_heard.items()
                if p != self.pid and now_ms - at <= window
            ))
        leader = self._leader_id
        if leader is not None and leader != self.pid \
                and now_ms - self._last_leader_contact <= window:
            return (leader,)
        return ()

    def _report_health(self, now_ms: float) -> None:
        """Emit one :class:`HeartbeatViewReported` per heartbeat interval
        (Raft has no heartbeat rounds; the interval is the closest
        analogue). Only called with observability on."""
        if self._last_health_at is not None \
                and now_ms - self._last_health_at < self._config.heartbeat_interval:
            return
        self._last_health_at = now_ms
        self._health_round += 1
        heard = self._peers_heard(now_ms)
        self._obs.emit(HeartbeatViewReported(
            pid=self.pid,
            round=self._health_round,
            ballot=self._term,
            leader=self.leader_pid if self.leader_pid is not None else 0,
            quorum_connected=len(heard) + 1 > len(self.members) // 2,
            connectivity=len(heard) + 1,
            peers_heard=heard,
            phase=self._role.value,
            log_len=len(self._log),
            decided_idx=self._commit_idx,
        ))

    def status(self) -> Dict[str, Any]:
        """Admin introspection: this server's current health view (the
        Raft analogue of ``OmniPaxosServer.status``)."""
        now_ms = self._obs.now_ms() if self._obs.enabled else \
            max(self._last_leader_contact, self._last_health_at or 0.0)
        heard = self._peers_heard(now_ms)
        return {
            "pid": self.pid,
            "protocol": "raft",
            "phase": "crashed" if self._crashed else self._role.value,
            "ballot": self._term,
            "leader": self.leader_pid if self.leader_pid is not None else 0,
            "quorum_connected": len(heard) + 1 > len(self.members) // 2,
            "connectivity": len(heard) + 1,
            "peers_heard": list(heard),
            "hb_round": self._health_round,
            "log_len": len(self._log),
            "decided_idx": self._commit_idx,
            "degraded": self._gray.snapshot(),
            "self_health": (
                None if self._self_monitor is None
                else self._self_monitor.snapshot()
            ),
        }

    # ------------------------------------------------------------------
    # Replica interface: driving
    # ------------------------------------------------------------------

    def preload(self, entries: Sequence[Any], term: int = 1) -> None:
        """Pre-populate the log with already-committed entries (benchmark
        warm starts); must be called before :meth:`start`."""
        if self._started:
            raise ConfigError("preload must happen before start()")
        self._log = RaftLog()
        self._log.extend(RaftSlot(term, entry) for entry in entries)
        self._commit_idx = len(self._log)
        self._applied_idx = len(self._log)
        self._term = max(self._term, term)

    def start(self, now_ms: float) -> None:
        if self._started:
            return
        self._started = True
        self._reset_election_deadline(now_ms)
        seed = self._config.initial_leader
        if seed is not None and self._voters is not None:
            if seed not in self._voters:
                raise ConfigError("initial_leader must be a voter")
            self._term = 1
            self._set_leader(seed)
            if seed == self.pid:
                self._become_leader(now_ms)

    def tick(self, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        if self._self_monitor is not None:
            self._self_monitor.observe_fire(now_ms)
            if self._role is RaftRole.LEADER and self._self_monitor.degraded:
                # Gray-aware: a self-diagnosed fail-slow leader abdicates
                # voluntarily instead of limping along on just-frequent-
                # enough heartbeats. Safe in Raft — stepping down never
                # violates safety, only costs one election.
                self.stats.stepdowns_self_degraded += 1
                self._step_down(self._term, now_ms, leader=None)
        if self._role is RaftRole.LEADER:
            if now_ms >= self._heartbeat_deadline:
                self._broadcast_append(now_ms, heartbeat=True)
                self._heartbeat_deadline = now_ms + self._config.heartbeat_interval
            if self._config.check_quorum and now_ms >= self._election_deadline:
                self._check_quorum(now_ms)
        else:
            if now_ms >= self._election_deadline and self._can_campaign():
                if self._config.prevote:
                    self._start_prevote(now_ms)
                else:
                    self._start_election(now_ms)
        if self._obs_on:
            self._report_health(now_ms)

    def on_message(self, src: int, msg: Any, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        if self._obs_on and isinstance(msg, AppendEntries):
            # The leader's timer fired: a beacon for the gray-failure
            # detector's interval signal (mirrors BLE HeartbeatRequest).
            self._gray.observe_beacon(src, now_ms)
        if isinstance(msg, RequestVote):
            self._on_request_vote(src, msg, now_ms)
        elif isinstance(msg, RequestVoteReply):
            self._on_vote_reply(src, msg, now_ms)
        elif isinstance(msg, AppendEntries):
            self._on_append_entries(src, msg, now_ms)
        elif isinstance(msg, AppendEntriesReply):
            self._on_append_reply(src, msg, now_ms)
        elif isinstance(msg, InstallSnapshot):
            self._on_install_snapshot(src, msg, now_ms)
        elif isinstance(msg, TimeoutNow):
            self._on_timeout_now(src, msg, now_ms)

    def propose(self, entry: Any, now_ms: float) -> None:
        self.propose_batch([entry], now_ms)

    def propose_batch(self, entries: Sequence[Any], now_ms: float) -> None:
        """Append and replicate ``entries`` (leader only).

        Raft clients are redirected rather than forwarded: a non-leader
        raises :class:`NotLeaderError` carrying its best leader hint.
        """
        if self._role is not RaftRole.LEADER:
            raise NotLeaderError(leader=self._leader_id)
        start = len(self._log)
        self._log.extend(RaftSlot(self._term, entry) for entry in entries)
        if self._obs.tracing and entries:
            self._trace_fanout.append((len(self._log), self._obs.now_ms()))
            self._obs.emit(ProposalAppended(
                pid=self.pid, from_idx=start, to_idx=len(self._log),
                protocol="raft", trace_id=entry_trace_id(entries[0]),
            ))
        self._maybe_commit()
        self._broadcast_append(now_ms)

    def propose_reconfiguration(self, servers: Sequence[int],
                                now_ms: float) -> None:
        """Append a membership-change entry (leader only)."""
        if self._role is not RaftRole.LEADER:
            raise NotLeaderError(leader=self._leader_id)
        if self._pending_config is not None:
            raise ConfigError("a configuration change is already in flight")
        servers = tuple(servers)
        if len(set(servers)) != len(servers) or not servers:
            raise ConfigError("invalid new member set")
        change = RaftConfigChange(servers)
        self._log.append(RaftSlot(self._term, change))
        self._pending_config = (len(self._log), servers)
        for peer in servers:
            if peer != self.pid and peer not in self._replication_targets:
                self._replication_targets.add(peer)
                self._next_idx[peer] = len(self._log)
                self._match_idx[peer] = 0
        self._broadcast_append(now_ms)

    def transfer_leadership(self, target: int, now_ms: float) -> None:
        """Hand leadership to ``target`` (must be an up-to-date voter).

        The leader brings the target fully up to date, then tells it to
        campaign immediately with ``TimeoutNow`` — the target's higher term
        deposes us in one round trip, with no availability gap from waiting
        out an election timeout.
        """
        if self._role is not RaftRole.LEADER:
            raise NotLeaderError(leader=self._leader_id)
        if self._voters is None or target not in self._voters or \
                target == self.pid:
            raise ConfigError(f"{target} is not a transferable voter")
        if self._match_idx.get(target, 0) < len(self._log):
            # Catch the target up first; callers retry once it matches.
            self._send_append(target, now_ms, force=True)
            raise ConfigError(f"server {target} is not caught up yet")
        self._send(target, TimeoutNow(self._term))

    def _on_timeout_now(self, src: int, msg: TimeoutNow,
                        now_ms: float) -> None:
        if msg.term != self._term or not self._can_campaign():
            return
        # Deliberate transfer: skip PreVote and campaign at once.
        self._start_election(now_ms)

    def take_outbox(self) -> List[Tuple[int, Any]]:
        out, self._outbox = self._outbox, []
        return out

    def take_decided(self) -> List[Tuple[int, Any]]:
        out, self._decided_out = self._decided_out, []
        if out and self._obs_on:
            self._obs.counter("repro_decided_entries_total",
                              pid=self.pid).inc(len(out))
            if self._obs.tracing:
                self._obs.emit(EntryApplied(
                    pid=self.pid, log_idx=out[-1][0] + 1, count=len(out)))
        return out

    # ------------------------------------------------------------------
    # Replica interface: failures
    # ------------------------------------------------------------------

    def crash(self) -> None:
        self._crashed = True

    def recover(self, now_ms: float) -> None:
        """Restart: persistent state (term, vote, log) survives; volatile
        state (role, commit index) is rebuilt from the leader."""
        if not self._crashed:
            return
        self._crashed = False
        if self._obs.tracing and self._trace_recovery is None:
            self._trace_recovery = self._obs.now_ms()
            self._obs.emit(RecoveryStarted(pid=self.pid, reason="crash"))
        self._set_role(RaftRole.FOLLOWER)
        self._leader_id = None
        self._commit_idx = 0
        self._applied_idx = 0
        self._votes.clear()
        self._prevotes.clear()
        self._reset_election_deadline(now_ms)

    def on_session_drop(self, peer: int, now_ms: float) -> None:
        """Raft has no session-drop protocol: retries re-establish state."""

    # ------------------------------------------------------------------
    # internals: elections
    # ------------------------------------------------------------------

    def _can_campaign(self) -> bool:
        if self.self_degraded:
            # Gray-aware: a self-diagnosed fail-slow server declines
            # candidacy — it would win (its log is fresh) and immediately
            # be the problem again.
            return False
        return self._voters is not None and self.pid in self._voters

    def _majority(self) -> int:
        assert self._voters is not None
        return len(self._voters) // 2 + 1

    def _reset_election_deadline(self, now_ms: float) -> None:
        base = self._config.election_timeout_ms
        self._election_deadline = now_ms + base + self._rng.random() * base

    def _last_log_info(self) -> Tuple[int, int]:
        last = len(self._log)
        return last, self._log.term_at(last)

    def _set_role(self, role: RaftRole) -> None:
        """Change role, emitting a :class:`RoleChanged` event on a flip."""
        if role is self._role:
            return
        self._role = role
        if role is not RaftRole.LEADER:
            self._trace_fanout.clear()  # those batches died with the tenure
        if self._obs.enabled:
            self._obs.emit(RoleChanged(pid=self.pid, role=role.value,
                                       protocol="raft"))

    def _set_leader(self, leader: Optional[int]) -> None:
        """Adopt ``leader``, emitting :class:`BallotElected` on a change."""
        if leader == self._leader_id:
            return
        self._leader_id = leader
        if leader is not None and self._obs.enabled:
            self._obs.emit(BallotElected(pid=self.pid, leader=leader,
                                         ballot=self._term))

    def _start_prevote(self, now_ms: float) -> None:
        self._set_role(RaftRole.PRECANDIDATE)
        self._prevotes = {self.pid}
        self.stats.prevotes_started += 1
        self._reset_election_deadline(now_ms)
        last_idx, last_term = self._last_log_info()
        msg = RequestVote(self._term + 1, self.pid, last_idx, last_term, prevote=True)
        for peer in self._other_voters():
            self._send(peer, msg)
        if len(self._prevotes) >= self._majority():
            self._start_election(now_ms)

    def _start_election(self, now_ms: float) -> None:
        self._set_role(RaftRole.CANDIDATE)
        self._term += 1
        self.stats.max_term_seen = max(self.stats.max_term_seen, self._term)
        self._voted_for = self.pid
        self._votes = {self.pid}
        self._leader_id = None
        self.stats.elections_started += 1
        self._reset_election_deadline(now_ms)
        last_idx, last_term = self._last_log_info()
        msg = RequestVote(self._term, self.pid, last_idx, last_term)
        for peer in self._other_voters():
            self._send(peer, msg)
        if len(self._votes) >= self._majority():
            self._become_leader(now_ms)

    def _other_voters(self) -> Tuple[int, ...]:
        assert self._voters is not None
        return tuple(p for p in self._voters if p != self.pid)

    def _log_up_to_date(self, msg: RequestVote) -> bool:
        last_idx, last_term = self._last_log_info()
        if msg.last_log_term != last_term:
            return msg.last_log_term > last_term
        return msg.last_log_idx >= last_idx

    def _on_request_vote(self, src: int, msg: RequestVote, now_ms: float) -> None:
        if msg.prevote:
            self._on_prevote_request(src, msg, now_ms)
            return
        if self._voters is not None and msg.candidate not in self._voters:
            # A server removed by a committed config change may keep
            # campaigning; ignoring it (without adopting its term) is the
            # standard etcd/TiKV guard against removed-member disruption.
            self._send(src, RequestVoteReply(self._term, False))
            return
        if msg.term > self._term:
            self._step_down(msg.term, now_ms, leader=None)
        granted = (
            msg.term == self._term
            and self._voted_for in (None, msg.candidate)
            and self._role is not RaftRole.LEADER
            and self._log_up_to_date(msg)
        )
        if granted:
            self._voted_for = msg.candidate
            self._reset_election_deadline(now_ms)
        self._send(src, RequestVoteReply(self._term, granted))

    def _on_prevote_request(self, src: int, msg: RequestVote,
                            now_ms: float) -> None:
        # Leader stickiness: refuse if we heard from a live leader within
        # the minimum election timeout — this is what keeps PV+CQ stable in
        # the chained scenario (no term churn while the leader is reachable).
        heard_recently = (
            now_ms - self._last_leader_contact < self._config.election_timeout_ms
        )
        granted = (
            msg.term >= self._term
            and not heard_recently
            and self._log_up_to_date(msg)
        )
        self._send(src, RequestVoteReply(msg.term, granted, prevote=True))

    def _on_vote_reply(self, src: int, msg: RequestVoteReply,
                       now_ms: float) -> None:
        if self._voters is None or src not in self._voters:
            return  # only votes from actual voters count toward a majority
        if msg.prevote:
            if self._role is RaftRole.PRECANDIDATE and msg.granted \
                    and msg.term == self._term + 1:
                self._prevotes.add(src)
                if len(self._prevotes) >= self._majority():
                    self._start_election(now_ms)
            return
        if msg.term > self._term:
            self._step_down(msg.term, now_ms, leader=None)
            return
        if self._role is RaftRole.CANDIDATE and msg.granted \
                and msg.term == self._term:
            self._votes.add(src)
            if len(self._votes) >= self._majority():
                self._become_leader(now_ms)

    def _become_leader(self, now_ms: float) -> None:
        self._set_role(RaftRole.LEADER)
        self._set_leader(self.pid)
        self.stats.leader_changes += 1
        self._next_idx = {p: len(self._log) for p in self._replication_targets}
        self._match_idx = {p: 0 for p in self._replication_targets}
        self._last_heard = {p: now_ms for p in self._replication_targets}
        self._heartbeat_deadline = now_ms
        self._election_deadline = now_ms + self._config.election_timeout_ms
        self._broadcast_append(now_ms, heartbeat=True)

    def _step_down(self, term: int, now_ms: float,
                   leader: Optional[int]) -> None:
        if term > self._term:
            self._term = term
            self._voted_for = None
            self.stats.max_term_seen = max(self.stats.max_term_seen, term)
        self._set_role(RaftRole.FOLLOWER)
        self._set_leader(leader)
        self._votes.clear()
        self._prevotes.clear()
        self._reset_election_deadline(now_ms)

    def _check_quorum(self, now_ms: float) -> None:
        """CheckQuorum: abdicate if a majority has gone silent."""
        window = self._config.election_timeout_ms
        assert self._voters is not None
        heard = 1  # ourselves
        for peer in self._other_voters():
            if now_ms - self._last_heard.get(peer, -1e18) <= window:
                heard += 1
        if heard < self._majority():
            self.stats.stepdowns_check_quorum += 1
            self._step_down(self._term, now_ms, leader=None)
        else:
            self._election_deadline = now_ms + window

    # ------------------------------------------------------------------
    # internals: log replication
    # ------------------------------------------------------------------

    def _broadcast_append(self, now_ms: float, heartbeat: bool = False) -> None:
        if self._role is not RaftRole.LEADER:
            return
        # In steady state every follower has the same next_idx, so the
        # per-peer log slices of one fan-out are identical; share them
        # through a broadcast-scoped memo instead of re-slicing per peer.
        memo: Dict[Tuple[int, int], Tuple[RaftSlot, ...]] = {}
        for peer in sorted(self._replication_targets):
            self._send_append(peer, now_ms, force=heartbeat, slice_memo=memo)

    def _should_snapshot_to(self, next_idx: int) -> bool:
        threshold = self._config.snapshot_catchup_threshold
        if threshold is None or self._config.snapshotter is None:
            return False
        return self._commit_idx - next_idx > threshold

    def _refresh_snapshot(self) -> None:
        """Fold the committed prefix into the leader's transport snapshot."""
        if self._snap_idx >= self._commit_idx:
            return
        entries = [slot.entry
                   for slot in self._log.slice(self._snap_idx, self._commit_idx)]
        self._snap_state = self._config.snapshotter(entries, self._snap_state)
        self._snap_idx = self._commit_idx
        self._snap_term = self._log.term_at(self._snap_idx)

    def _send_snapshot(self, peer: int) -> None:
        self._refresh_snapshot()
        self.stats.snapshots_sent += 1
        self._send(peer, InstallSnapshot(
            term=self._term,
            leader=self.pid,
            last_idx=self._snap_idx,
            last_term=self._snap_term,
            state=self._snap_state,
            leader_commit=self._commit_idx,
        ))
        # Optimistically stream the tail behind the snapshot.
        self._next_idx[peer] = self._snap_idx

    def _on_install_snapshot(self, src: int, msg: InstallSnapshot,
                             now_ms: float) -> None:
        if msg.term < self._term:
            self._send(src, AppendEntriesReply(self._term, False,
                                               len(self._log)))
            return
        if msg.term > self._term or self._role is not RaftRole.FOLLOWER:
            self._step_down(msg.term, now_ms, leader=msg.leader)
        self._set_leader(msg.leader)
        self._last_leader_contact = now_ms
        self._reset_election_deadline(now_ms)
        if msg.last_idx > self._log.base:
            keep_tail = (
                msg.last_idx <= len(self._log)
                and not self._log.covered_by_snapshot(msg.last_idx)
                and self._log.term_at(msg.last_idx) == msg.last_term
            )
            if not keep_tail:
                self._log.truncate_from(min(msg.last_idx, len(self._log)))
            self._log.install(msg.last_idx, msg.last_term)
            # Retain the state: if we ever lead, peers below our base get it.
            self._snap_state = msg.state
            self._snap_idx = msg.last_idx
            self._snap_term = msg.last_term
            # Surface the snapshot to the application in the decided stream.
            self._decided_out.append(
                (msg.last_idx, SnapshotInstalled(msg.state)))
            self._applied_idx = max(self._applied_idx, msg.last_idx)
            self._commit_idx = max(self._commit_idx, msg.last_idx)
        if msg.leader_commit > self._commit_idx:
            self._set_commit(min(msg.leader_commit, len(self._log)))
        self._send(src, AppendEntriesReply(self._term, True, len(self._log)))

    def _send_append(self, peer: int, now_ms: float, force: bool = False,
                     slice_memo: Optional[Dict[Tuple[int, int],
                                              Tuple[RaftSlot, ...]]] = None,
                     ) -> None:
        next_idx = self._next_idx.get(peer, len(self._log))
        if self._should_snapshot_to(next_idx) or \
                self._log.covered_by_snapshot(next_idx + 1):
            # Too far behind to stream (or the entries are gone): ship state.
            self._send_snapshot(peer)
            return
        max_batch = self._config.max_entries_per_msg
        # Flow control: keep at most a two-batch window of unacknowledged
        # entries in flight per follower so a slow catch-up does not flood
        # the sender queue (raft-rs "inflights" behave similarly).
        window_open = next_idx - self._match_idx.get(peer, 0) <= 2 * max_batch
        entries: Tuple[RaftSlot, ...] = ()
        if window_open:
            key = (next_idx, next_idx + max_batch)
            if slice_memo is not None and key in slice_memo:
                entries = slice_memo[key]
            else:
                entries = self._log.slice(next_idx, next_idx + max_batch)
                if slice_memo is not None:
                    slice_memo[key] = entries
        if not entries and not force:
            return
        prev_idx = next_idx
        prev_term = self._log.term_at(prev_idx)
        seq = self._append_seq.get(peer, 0) + 1
        self._append_seq[peer] = seq
        self._send(peer, AppendEntries(
            term=self._term,
            leader=self.pid,
            prev_idx=prev_idx,
            prev_term=prev_term,
            entries=entries,
            leader_commit=self._commit_idx,
            seq=seq,
        ))
        if entries:
            # Optimistic pipelining: assume success and keep streaming.
            self._next_idx[peer] = next_idx + len(entries)

    def _on_append_entries(self, src: int, msg: AppendEntries,
                           now_ms: float) -> None:
        if msg.term < self._term:
            # Reject; the stale leader learns the new term — this reply is
            # the gossip channel that drives the chained livelock.
            self._send(src, AppendEntriesReply(
                self._term, False, len(self._log), msg.seq
            ))
            return
        if msg.term > self._term or self._role is not RaftRole.FOLLOWER:
            self._step_down(msg.term, now_ms, leader=msg.leader)
        self._set_leader(msg.leader)
        self._last_leader_contact = now_ms
        self._reset_election_deadline(now_ms)
        # Consistency check at prev_idx.
        if msg.prev_idx > len(self._log) or (
            msg.prev_idx > 0
            and not self._log.covered_by_snapshot(msg.prev_idx)
            and self._log.term_at(msg.prev_idx) != msg.prev_term
        ):
            hint = min(msg.prev_idx, len(self._log))
            self._send(src, AppendEntriesReply(self._term, False, hint, msg.seq))
            return
        # Append, truncating any conflicting suffix.
        insert_at = msg.prev_idx
        for offset, slot in enumerate(msg.entries):
            idx = insert_at + offset
            if idx < len(self._log):
                if self._log.covered_by_snapshot(idx + 1):
                    continue  # already folded into our snapshot
                if self._log.term_at(idx + 1) != slot.term:
                    self._log.truncate_from(idx)
                    self._log.append(slot)
            else:
                self._log.append(slot)
        match = msg.prev_idx + len(msg.entries)
        if msg.leader_commit > self._commit_idx:
            self._set_commit(min(msg.leader_commit, match))
        self._send(src, AppendEntriesReply(self._term, True, match, msg.seq))

    def _on_append_reply(self, src: int, msg: AppendEntriesReply,
                         now_ms: float) -> None:
        if msg.term > self._term:
            self._step_down(msg.term, now_ms, leader=None)
            return
        if self._role is not RaftRole.LEADER or msg.term != self._term:
            return
        self._last_heard[src] = now_ms
        if msg.success:
            if msg.match_idx > self._match_idx.get(src, 0):
                self._match_idx[src] = msg.match_idx
            self._next_idx[src] = max(self._next_idx.get(src, 0), msg.match_idx)
            self._maybe_commit()
            if self._next_idx[src] < len(self._log):
                self._send_append(src, now_ms)
        else:
            if msg.seq != self._append_seq.get(src):
                return  # stale rejection of an already-superseded probe
            # Fast backoff using the follower's length hint, then retry.
            self._next_idx[src] = min(
                msg.match_idx, max(self._next_idx.get(src, 1) - 1, 0)
            )
            self._send_append(src, now_ms)

    def _committed_by(self, idx: int, voter_set: Sequence[int]) -> bool:
        count = 0
        for pid in voter_set:
            match = len(self._log) if pid == self.pid else self._match_idx.get(pid, 0)
            if match >= idx:
                count += 1
        return count >= len(voter_set) // 2 + 1

    def _maybe_commit(self) -> None:
        if self._role is not RaftRole.LEADER or self._voters is None:
            return
        for idx in range(len(self._log), self._commit_idx, -1):
            if self._log.covered_by_snapshot(idx):
                break
            if self._log.term_at(idx) != self._term:
                break  # only entries of the current term commit by counting
            voter_set: Sequence[int] = self._voters
            if self._pending_config is not None and idx > self._pending_config[0]:
                # Entries past an uncommitted config change need the NEW
                # majority as well — with a majority of fresh servers this
                # stalls until one of them has caught up the whole log.
                if not self._committed_by(idx, self._pending_config[1]):
                    continue
            if self._committed_by(idx, voter_set):
                self._set_commit(idx)
                break

    def _set_commit(self, idx: int) -> None:
        if idx <= self._commit_idx:
            return
        self._commit_idx = idx
        if self._obs.tracing:
            if self._role is RaftRole.LEADER:
                self._obs.emit(QuorumAccepted(pid=self.pid, log_idx=idx,
                                              protocol="raft"))
                now = self._obs.now_ms()
                while self._trace_fanout and self._trace_fanout[0][0] <= idx:
                    _, fanned_at = self._trace_fanout.pop(0)
                    self._obs.histogram(
                        "repro_commit_phase_ms", phase="replicate"
                    ).observe(now - fanned_at)
            if self._trace_recovery is not None:
                # First commit advance after a restart: the leader has
                # resynchronized our log and commit watermark.
                self._obs.emit(RecoveryCompleted(pid=self.pid,
                                                 log_idx=len(self._log)))
                self._obs.histogram("repro_recovery_duration_ms").observe(
                    self._obs.now_ms() - self._trace_recovery)
                self._trace_recovery = None
        while self._applied_idx < self._commit_idx:
            slot = self._log.slot_at(self._applied_idx + 1)
            self._applied_idx += 1
            self._decided_out.append((self._applied_idx - 1, slot.entry))
            if isinstance(slot.entry, RaftConfigChange):
                self._apply_config(slot.entry, self._applied_idx)

    def _apply_config(self, change: RaftConfigChange, idx: int) -> None:
        self._voters = change.servers
        if self._pending_config is not None and self._pending_config[0] == idx:
            self._pending_config = None
        self._replication_targets = {
            p for p in change.servers if p != self.pid
        }
        if self.pid not in change.servers and self._role is RaftRole.LEADER:
            # A leader not in the new configuration steps down once the
            # change commits (standard Raft practice).
            self._set_role(RaftRole.FOLLOWER)
            self._leader_id = None

    def _send(self, dst: int, msg: Any) -> None:
        self._outbox.append((dst, msg))


#: Wire-crossing Raft messages, registered with stable binary tags in
#: `repro.runtime.codec` (drift guarded by the codec test suite).
WIRE_MESSAGES = (
    RequestVote,
    RequestVoteReply,
    AppendEntries,
    AppendEntriesReply,
    RaftSlot,
    TimeoutNow,
    RaftConfigChange,
    InstallSnapshot,
)
