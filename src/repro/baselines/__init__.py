"""Baseline protocols the paper evaluates against.

- :mod:`repro.baselines.raft` — Raft with optional PreVote and CheckQuorum
  (the paper's "Raft" and "Raft PV+CQ" configurations, modelled on TiKV's
  raft-rs behaviour).
- :mod:`repro.baselines.multipaxos` — Multi-Paxos with per-slot decisions
  and a failure-detector-driven ballot takeover (frankenpaxos-style).
- :mod:`repro.baselines.vr` — Viewstamped Replication's leader election
  layered on Omni-Paxos' Sequence Paxos log replication, exactly the hybrid
  the paper evaluates ("an implementation of VR's leader election with
  Omni-Paxos' log replication").

All of them implement :class:`repro.replica.Replica`, so every experiment
harness can swap protocols freely.
"""

from repro.baselines.raft import RaftReplica, RaftConfig
from repro.baselines.multipaxos import MultiPaxosReplica, MultiPaxosConfig
from repro.baselines.vr import VRReplica, VRConfig

__all__ = [
    "RaftReplica",
    "RaftConfig",
    "MultiPaxosReplica",
    "MultiPaxosConfig",
    "VRReplica",
    "VRConfig",
]
