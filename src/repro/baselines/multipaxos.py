"""Multi-Paxos with per-slot decisions and failure-detector leader takeover.

Modelled on the "Paxos made moderately complex" / frankenpaxos lineage the
paper benchmarks against:

- Entries are decided **per slot**: each slot independently carries a
  ``(ballot, value)`` pair at the acceptors; a new leader recovers all
  possibly-chosen slots in Phase 1 and fills gaps with no-ops.
- Leadership is driven by a failure detector: every server *pings the
  process it believes is the leader*; a missing pong makes it suspect,
  increment its ballot past everything it has seen, and run Phase 1.
- A server's **believed leader** only changes when a new leader actually
  establishes itself (completes Phase 1 and sends Phase 2 messages to it) —
  merely observing higher ballots does not change whom it monitors. Pongs
  are process-alive replies, independent of role.

Those two rules reproduce the paper's findings exactly:

- *Quorum-loss*: the pivot keeps pinging the old leader, which is alive, so
  it never campaigns; the disconnected followers churn ballots forever but
  are not quorum-connected — deadlock for the whole partition (Figure 8a).
- *Constrained election*: the old leader is unreachable, the pivot suspects
  and campaigns; it succeeds because Multi-Paxos candidates need nothing but
  quorum-connectivity, then Phase 1 catches up its stale log (Figure 8b).
- *Chained*: the two endpoints alternately preempt each other through the
  middle server's acceptor replies — a livelock of leader changes that
  costs throughput but not total availability (Figure 8c).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.compat import SLOTTED
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError, NotLeaderError
from repro.obs.events import (
    BallotElected,
    EntryApplied,
    ProposalAppended,
    QuorumAccepted,
    RecoveryCompleted,
    RecoveryStarted,
    RoleChanged,
)
from repro.obs.registry import Instrumented
from repro.obs.spans import entry_trace_id
from repro.omni.entry import entry_wire_size
from repro.replica import Replica
from repro.util.rng import spawn_rng

_HEADER = 24

#: Gap filler for slots with no recovered value after a leader change.
NOOP = "__mp_noop__"


class MPRole(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


# --------------------------------------------------------------------------
# wire messages
# --------------------------------------------------------------------------

@dataclass(frozen=True, **SLOTTED)
class P1a:
    """Phase-1 prepare: ballot plus the slot to recover from."""

    ballot: Tuple[int, int]
    from_slot: int

    def wire_size(self) -> int:
        return _HEADER + 24


@dataclass(frozen=True, **SLOTTED)
class P1b:
    """Phase-1 reply. ``promised > ballot`` means preempted."""

    ballot: Tuple[int, int]
    promised: Tuple[int, int]
    accepted: Tuple[Tuple[int, Tuple[int, int], Any], ...]
    decided_upto: int

    def wire_size(self) -> int:
        payload = sum(24 + entry_wire_size(v) for (_s, _b, v) in self.accepted)
        return _HEADER + 40 + payload


@dataclass(frozen=True, **SLOTTED)
class P2a:
    """Phase-2 accept for a batch of consecutive slots (also the leader's
    heartbeat when ``slots`` is empty)."""

    ballot: Tuple[int, int]
    first_slot: int
    values: Tuple[Any, ...]
    decided_upto: int

    def wire_size(self) -> int:
        payload = sum(entry_wire_size(v) for v in self.values)
        return _HEADER + 40 + payload


@dataclass(frozen=True, **SLOTTED)
class P2b:
    """Phase-2 reply: accepted watermark, or preemption via ``promised``."""

    ballot: Tuple[int, int]
    promised: Tuple[int, int]
    accepted_upto: int

    def wire_size(self) -> int:
        return _HEADER + 40


@dataclass(frozen=True, **SLOTTED)
class Ping:
    """Failure-detector probe to the believed leader."""

    def wire_size(self) -> int:
        return _HEADER


@dataclass(frozen=True, **SLOTTED)
class Pong:
    """Process-alive reply — answered regardless of role, which is exactly
    why the quorum-loss pivot never suspects the degraded leader."""

    def wire_size(self) -> int:
        return _HEADER


# --------------------------------------------------------------------------
# configuration
# --------------------------------------------------------------------------

@dataclass(frozen=True, **SLOTTED)
class MultiPaxosConfig:
    pid: int
    peers: Tuple[int, ...]
    #: Failure-detector suspicion timeout (the experiment's election timeout).
    election_timeout_ms: float = 500.0
    #: Leader heartbeat / FD ping period; defaults to timeout / 5.
    ping_period_ms: Optional[float] = None
    #: Base back-off after a failed campaign (grows linearly with attempts).
    backoff_ms: Optional[float] = None
    max_slots_per_msg: int = 4096
    seed: int = 0
    initial_leader: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pid <= 0:
            raise ConfigError("pids must be positive")
        if self.pid in self.peers:
            raise ConfigError("peers must not contain own pid")
        if self.election_timeout_ms <= 0:
            raise ConfigError("election_timeout_ms must be positive")

    @property
    def ping_period(self) -> float:
        if self.ping_period_ms is not None:
            return self.ping_period_ms
        return max(self.election_timeout_ms / 5.0, 1.0)

    @property
    def backoff(self) -> float:
        if self.backoff_ms is not None:
            return self.backoff_ms
        return self.election_timeout_ms / 2.0

    @property
    def majority(self) -> int:
        return (len(self.peers) + 1) // 2 + 1


@dataclass
class MultiPaxosStats:
    campaigns: int = 0
    preemptions: int = 0
    leader_changes: int = 0


class MultiPaxosReplica(Replica, Instrumented):
    """One Multi-Paxos server (proposer + acceptor + learner)."""

    def __init__(self, config: MultiPaxosConfig):
        self._config = config
        self._rng = spawn_rng(config.seed, "multipaxos", config.pid)
        # Acceptor state.
        self._promised: Tuple[int, int] = (0, 0)
        self._accepted: Dict[int, Tuple[Tuple[int, int], Any]] = {}
        self._accepted_upto = 0  # contiguous accepted prefix length
        # Learner state.
        self._decided_upto = 0
        self._applied_upto = 0
        # Proposer state.
        self._role = MPRole.FOLLOWER
        self._ballot: Tuple[int, int] = (0, config.pid)
        self._max_ballot_seen: Tuple[int, int] = (0, 0)
        self._believed_leader: Optional[int] = config.initial_leader
        self._log: List[Any] = []  # leader's view of slot values
        self._p1b: Dict[int, P1b] = {}
        self._acceptor_upto: Dict[int, int] = {}
        self._campaign_attempts = 0
        self._next_campaign_at = 0.0
        # Failure detector.
        self._last_pong = 0.0
        self._next_ping = 0.0
        self._buffer: List[Any] = []
        self._outbox: List[Tuple[int, Any]] = []
        self._decided_out: List[Tuple[int, Any]] = []
        self._crashed = False
        self._started = False
        #: Tracing-only: fan-out times of in-flight batches, and the
        #: start of an open crash recovery (see repro.obs.spans).
        self._trace_fanout: List[Tuple[int, float]] = []
        self._trace_recovery: Optional[float] = None
        self.stats = MultiPaxosStats()

    # ------------------------------------------------------------------
    # Replica interface: accessors
    # ------------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self._config.pid

    @property
    def members(self) -> Tuple[int, ...]:
        return tuple(sorted((self.pid,) + self._config.peers))

    @property
    def is_leader(self) -> bool:
        return self._role is MPRole.LEADER

    @property
    def leader_pid(self) -> Optional[int]:
        return self.pid if self.is_leader else self._believed_leader

    @property
    def ballot(self) -> Tuple[int, int]:
        return self._ballot

    @property
    def decided_upto(self) -> int:
        return self._decided_upto

    # ------------------------------------------------------------------
    # Replica interface: driving
    # ------------------------------------------------------------------

    def start(self, now_ms: float) -> None:
        if self._started:
            return
        self._started = True
        self._last_pong = now_ms
        self._next_ping = now_ms
        seed = self._config.initial_leader
        if seed == self.pid:
            self._ballot = (1, self.pid)
            self._max_ballot_seen = self._ballot
            self._promised = self._ballot
            self._set_role(MPRole.LEADER)
            self.stats.leader_changes += 1
            if self._obs.enabled:
                self._obs.emit(BallotElected(pid=self.pid, leader=self.pid,
                                             ballot=self._ballot[0]))

    def tick(self, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        if self._role is MPRole.LEADER:
            if now_ms >= self._next_ping:
                self._next_ping = now_ms + self._config.ping_period
                # Heartbeat: an empty P2a re-asserts leadership and carries
                # the decided watermark.
                self._broadcast(P2a(self._ballot, len(self._log), (),
                                    self._decided_upto))
            return
        # Follower / candidate: drive the failure detector.
        if now_ms >= self._next_ping:
            self._next_ping = now_ms + self._config.ping_period
            if self._believed_leader is not None \
                    and self._believed_leader != self.pid:
                self._send(self._believed_leader, Ping())
        if self._role is MPRole.CANDIDATE:
            # A contender keeps retrying Phase 1 (with back-off) until some
            # leader establishes itself — the PMMC scout-driver loop.
            if now_ms >= self._next_campaign_at:
                self._campaign(now_ms)
            return
        suspect = now_ms - self._last_pong >= self._config.election_timeout_ms
        if suspect and now_ms >= self._next_campaign_at:
            self._campaign(now_ms)

    def on_message(self, src: int, msg: Any, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        if isinstance(msg, Ping):
            self._send(src, Pong())
        elif isinstance(msg, Pong):
            if src == self._believed_leader:
                self._last_pong = now_ms
        elif isinstance(msg, P1a):
            self._on_p1a(src, msg, now_ms)
        elif isinstance(msg, P1b):
            self._on_p1b(src, msg, now_ms)
        elif isinstance(msg, P2a):
            self._on_p2a(src, msg, now_ms)
        elif isinstance(msg, P2b):
            self._on_p2b(src, msg, now_ms)

    def propose(self, entry: Any, now_ms: float) -> None:
        self.propose_batch([entry], now_ms)

    def propose_batch(self, entries: Sequence[Any], now_ms: float) -> None:
        if self._role is not MPRole.LEADER:
            raise NotLeaderError(leader=self._believed_leader)
        first = len(self._log)
        self._log.extend(entries)
        if self._obs.tracing and entries:
            self._trace_fanout.append((len(self._log), self._obs.now_ms()))
            self._obs.emit(ProposalAppended(
                pid=self.pid, from_idx=first, to_idx=len(self._log),
                protocol="multipaxos", trace_id=entry_trace_id(entries[0]),
            ))
        self._accept_locally(first, entries)
        self._broadcast(P2a(self._ballot, first, tuple(entries),
                            self._decided_upto))
        self._maybe_decide()

    def take_outbox(self) -> List[Tuple[int, Any]]:
        out, self._outbox = self._outbox, []
        return out

    def take_decided(self) -> List[Tuple[int, Any]]:
        out, self._decided_out = self._decided_out, []
        if out and self._obs_on:
            self._obs.counter("repro_decided_entries_total",
                              pid=self.pid).inc(len(out))
            if self._obs.tracing:
                self._obs.emit(EntryApplied(
                    pid=self.pid, log_idx=self._applied_upto, count=len(out)))
        return out

    # ------------------------------------------------------------------
    # Replica interface: failures
    # ------------------------------------------------------------------

    def crash(self) -> None:
        self._crashed = True

    def recover(self, now_ms: float) -> None:
        """Restart: acceptor state is persistent; leadership is volatile."""
        if not self._crashed:
            return
        self._crashed = False
        if self._obs.tracing and self._trace_recovery is None:
            self._trace_recovery = self._obs.now_ms()
            self._obs.emit(RecoveryStarted(pid=self.pid, reason="crash"))
        self._set_role(MPRole.FOLLOWER)
        self._believed_leader = None
        self._last_pong = now_ms - self._config.election_timeout_ms
        self._next_ping = now_ms
        self._applied_upto = min(self._applied_upto, self._decided_upto)

    # ------------------------------------------------------------------
    # internals: acceptor
    # ------------------------------------------------------------------

    def _set_role(self, role: MPRole) -> None:
        """Change role, emitting a :class:`RoleChanged` event on a flip."""
        if role is self._role:
            return
        self._role = role
        if role is not MPRole.LEADER:
            self._trace_fanout.clear()  # those batches died with the tenure
        if self._obs.enabled:
            self._obs.emit(RoleChanged(pid=self.pid, role=role.value,
                                       protocol="multipaxos"))

    def _observe_ballot(self, ballot: Tuple[int, int]) -> None:
        if ballot > self._max_ballot_seen:
            self._max_ballot_seen = ballot

    def _on_p1a(self, src: int, msg: P1a, now_ms: float) -> None:
        self._observe_ballot(msg.ballot)
        if msg.ballot > self._promised:
            self._promised = msg.ballot
            if self._role is not MPRole.FOLLOWER and msg.ballot > self._ballot:
                # Our own candidacy/leadership is dead at our own acceptor.
                self._preempted(msg.ballot, now_ms)
        accepted = tuple(
            (slot, ballot, value)
            for slot, (ballot, value) in sorted(self._accepted.items())
            if slot >= msg.from_slot
        )
        self._send(src, P1b(msg.ballot, self._promised, accepted,
                            self._decided_upto))

    def _on_p2a(self, src: int, msg: P2a, now_ms: float) -> None:
        self._observe_ballot(msg.ballot)
        if msg.ballot < self._promised:
            # Reject, citing the higher promise — this reply is the ballot
            # gossip that powers the chained livelock.
            self._send(src, P2b(msg.ballot, self._promised, self._accepted_upto))
            return
        self._promised = msg.ballot
        if self._role is not MPRole.FOLLOWER and msg.ballot > self._ballot:
            # An established leader's Phase 2 reached us: whatever candidacy
            # or leadership we held is over.
            self.stats.preemptions += 1
            self._set_role(MPRole.FOLLOWER)
        # The sender has established itself: adopt it as the leader we
        # monitor (this is the only place believed_leader changes).
        if src != self._believed_leader:
            self._believed_leader = src
            if self._obs.enabled:
                self._obs.emit(BallotElected(pid=self.pid, leader=src,
                                             ballot=msg.ballot[0]))
        self._last_pong = now_ms
        accepted = self._accepted
        ballot = msg.ballot
        first_slot = msg.first_slot
        for offset, value in enumerate(msg.values):
            accepted[first_slot + offset] = (ballot, value)
        self._recompute_accepted_upto()
        if msg.decided_upto > self._decided_upto:
            self._advance_decided(msg.decided_upto)
        self._send(src, P2b(msg.ballot, self._promised, self._accepted_upto))

    def _recompute_accepted_upto(self) -> None:
        upto = self._accepted_upto
        while upto in self._accepted:
            upto += 1
        self._accepted_upto = upto

    # ------------------------------------------------------------------
    # internals: proposer
    # ------------------------------------------------------------------

    def _campaign(self, now_ms: float) -> None:
        self._set_role(MPRole.CANDIDATE)
        self.stats.campaigns += 1
        self._campaign_attempts += 1
        n = max(self._max_ballot_seen[0], self._ballot[0]) + 1
        self._ballot = (n, self.pid)
        self._observe_ballot(self._ballot)
        self._p1b.clear()
        # Promise ourselves.
        if self._ballot > self._promised:
            self._promised = self._ballot
        from_slot = self._decided_upto
        self._p1b[self.pid] = P1b(
            self._ballot, self._promised,
            tuple((slot, b, v) for slot, (b, v) in sorted(self._accepted.items())
                  if slot >= from_slot),
            self._decided_upto,
        )
        # Linearly growing, jittered back-off between attempts so competing
        # non-QC candidates eventually leave a quiet window for the QC one.
        backoff = self._config.backoff * self._campaign_attempts
        self._next_campaign_at = now_ms + backoff * (0.5 + self._rng.random())
        self._broadcast(P1a(self._ballot, from_slot))
        if len(self._p1b) >= self._config.majority:
            self._become_leader(now_ms)

    def _preempted(self, by: Tuple[int, int], now_ms: float) -> None:
        """A higher ballot killed our candidacy or leadership."""
        self.stats.preemptions += 1
        if self._role is MPRole.LEADER:
            # The preemptor established itself over a majority that includes
            # some acceptor we reach; step down and monitor it from now on.
            self._set_role(MPRole.FOLLOWER)
            self._believed_leader = by[1]
            self._last_pong = now_ms
        # A preempted *candidate* stays a contender: seeing a ballot is not
        # seeing a leader, so it retries after back-off (it reverts to
        # follower only when an established leader's Phase 2 reaches it).

    def _on_p1b(self, src: int, msg: P1b, now_ms: float) -> None:
        self._observe_ballot(msg.promised)
        if self._role is not MPRole.CANDIDATE or msg.ballot != self._ballot:
            return
        if msg.promised > self._ballot:
            self._preempted(msg.promised, now_ms)
            return
        self._p1b[src] = msg
        if len(self._p1b) >= self._config.majority:
            self._become_leader(now_ms)

    def _become_leader(self, now_ms: float) -> None:
        """Phase 1 complete: adopt the highest-ballot value per slot, fill
        gaps with no-ops, and re-propose everything at our ballot."""
        replies = list(self._p1b.values())
        self._p1b.clear()
        from_slot = min(self._decided_upto,
                        min((r.decided_upto for r in replies),
                            default=self._decided_upto))
        best: Dict[int, Tuple[Tuple[int, int], Any]] = {}
        max_slot = -1
        decided = self._decided_upto
        for reply in replies:
            decided = max(decided, reply.decided_upto)
            for slot, ballot, value in reply.accepted:
                max_slot = max(max_slot, slot)
                if slot not in best or ballot > best[slot][0]:
                    best[slot] = (ballot, value)
        # Rebuild the proposer log for every slot up to the highest seen.
        del self._log[:]
        for slot in range(0, max(max_slot + 1, decided, self._decided_upto)):
            if slot in best:
                self._log.append(best[slot][1])
            elif slot in self._accepted:
                self._log.append(self._accepted[slot][1])
            else:
                self._log.append(NOOP)
        self._set_role(MPRole.LEADER)
        self._believed_leader = self.pid
        self._campaign_attempts = 0
        self._acceptor_upto = {}
        self.stats.leader_changes += 1
        if self._obs.enabled:
            self._obs.emit(BallotElected(pid=self.pid, leader=self.pid,
                                         ballot=self._ballot[0]))
        # Re-propose the whole undecided tail at our ballot.
        tail_from = min(self._decided_upto, decided)
        values = tuple(self._log[tail_from:])
        self._accept_locally(tail_from, values)
        self._broadcast(P2a(self._ballot, tail_from, values, self._decided_upto))
        if decided > self._decided_upto:
            self._advance_decided(min(decided, self._accepted_upto))
        if self._buffer:
            pending, self._buffer = self._buffer, []
            self.propose_batch(pending, now_ms)
        self._maybe_decide()

    def _accept_locally(self, first_slot: int, values: Sequence[Any]) -> None:
        accepted = self._accepted
        ballot = self._ballot
        for offset, value in enumerate(values):
            accepted[first_slot + offset] = (ballot, value)
        self._recompute_accepted_upto()

    def _on_p2b(self, src: int, msg: P2b, now_ms: float) -> None:
        self._observe_ballot(msg.promised)
        if self._role is not MPRole.LEADER or msg.ballot != self._ballot:
            return
        if msg.promised > self._ballot:
            self._preempted(msg.promised, now_ms)
            return
        previous = self._acceptor_upto.get(src, 0)
        if msg.accepted_upto > previous:
            self._acceptor_upto[src] = msg.accepted_upto
            self._maybe_decide()
        if msg.accepted_upto < len(self._log):
            # The follower is behind (gap after a leader change or a healed
            # link): stream the missing slots.
            upto = msg.accepted_upto
            chunk = tuple(
                self._log[upto:upto + self._config.max_slots_per_msg]
            )
            if chunk and msg.accepted_upto > previous - 1:
                self._send(src, P2a(self._ballot, upto, chunk,
                                    self._decided_upto))

    def _maybe_decide(self) -> None:
        if self._role is not MPRole.LEADER:
            return
        marks = sorted(
            [self._accepted_upto]
            + [self._acceptor_upto.get(p, 0) for p in self._config.peers],
            reverse=True,
        )
        watermark = marks[self._config.majority - 1]
        if watermark > self._decided_upto:
            self._advance_decided(watermark)
            if self._obs.tracing and self._decided_upto > 0:
                self._obs.emit(QuorumAccepted(
                    pid=self.pid, log_idx=self._decided_upto,
                    protocol="multipaxos"))
                now = self._obs.now_ms()
                while self._trace_fanout and \
                        self._trace_fanout[0][0] <= self._decided_upto:
                    _, fanned_at = self._trace_fanout.pop(0)
                    self._obs.histogram(
                        "repro_commit_phase_ms", phase="replicate"
                    ).observe(now - fanned_at)
            self._broadcast(P2a(self._ballot, len(self._log), (),
                                self._decided_upto))

    def _advance_decided(self, upto: int) -> None:
        upto = min(upto, self._accepted_upto)
        if upto <= self._decided_upto:
            return
        self._decided_upto = upto
        if self._obs.tracing and self._trace_recovery is not None:
            # First decided advance after a restart: caught up again.
            self._obs.emit(RecoveryCompleted(pid=self.pid,
                                             log_idx=self._decided_upto))
            self._obs.histogram("repro_recovery_duration_ms").observe(
                self._obs.now_ms() - self._trace_recovery)
            self._trace_recovery = None
        applied = self._applied_upto
        decided = self._decided_upto
        accepted = self._accepted
        out = self._decided_out
        while applied < decided:
            _ballot, value = accepted[applied]
            if value != NOOP:
                out.append((applied, value))
            applied += 1
        self._applied_upto = applied

    # ------------------------------------------------------------------

    def _broadcast(self, msg: Any) -> None:
        for peer in self._config.peers:
            self._send(peer, msg)

    def _send(self, dst: int, msg: Any) -> None:
        self._outbox.append((dst, msg))


#: Wire-crossing Multi-Paxos messages, registered with stable binary tags
#: in `repro.runtime.codec` (drift guarded by the codec test suite).
WIRE_MESSAGES = (
    P1a,
    P1b,
    P2a,
    P2b,
    Ping,
    Pong,
)
