"""Viewstamped Replication's leader election over Sequence Paxos.

The paper evaluates "an implementation of VR's leader election [Liskov &
Cowling 2012] with Omni-Paxos' log replication" — this module is that
hybrid. The view-change protocol keeps VR's two defining properties:

- **Round-robin primaries**: the primary of view ``v`` is
  ``servers[v mod N]``; a view change cannot pick an arbitrary server.
- **EQC**: a replica sends ``DoViewChange`` only after it has received
  ``StartViewChange`` for that view from a majority, and the new primary
  needs a majority of ``DoViewChange`` messages — the leader must be
  *elected by quorum-connected servers*, which is precisely what deadlocks
  VR in the quorum-loss and constrained-election scenarios (only one server
  is quorum-connected, so nobody can ever be EQC).
- **View-change gossip**: any replica that *hears of* a higher view joins it
  and re-broadcasts ``StartViewChange`` — the gossip channel behind the
  repeated elections of paper section 2c.

Log replication, including the synchronization of the new primary, is
delegated to :class:`repro.omni.sequence_paxos.SequencePaxos` with the view
number as the ballot — functionally equivalent to VR's log merge in
``DoViewChange``/``StartView`` but reusing the already-proven machinery,
exactly as the paper's artifact does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.compat import SLOTTED
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.obs.events import BallotElected
from repro.obs.registry import Instrumented, MetricsRegistry
from repro.omni.ballot import Ballot
from repro.omni.sequence_paxos import SequencePaxos, SequencePaxosConfig
from repro.omni.storage import InMemoryStorage, Storage
from repro.replica import Replica

_HEADER = 24


class VRStatus(enum.Enum):
    NORMAL = "normal"
    VIEW_CHANGE = "view-change"


@dataclass(frozen=True, **SLOTTED)
class StartViewChange:
    """'I want (or heard of) a change to view ``view``' — gossiped."""

    view: int

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass(frozen=True, **SLOTTED)
class DoViewChange:
    """Sent to the new primary by replicas that saw a majority of
    StartViewChange messages for ``view``."""

    view: int

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass(frozen=True, **SLOTTED)
class StartView:
    """The new primary announces that ``view`` is operational."""

    view: int

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass(frozen=True, **SLOTTED)
class VRPing:
    """Primary liveness heartbeat within a view."""

    view: int

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass(frozen=True, **SLOTTED)
class VRConfig:
    pid: int
    servers: Tuple[int, ...]
    election_timeout_ms: float = 500.0
    ping_period_ms: Optional[float] = None
    initial_leader: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pid not in self.servers:
            raise ConfigError("pid must be a member")
        if len(set(self.servers)) != len(self.servers):
            raise ConfigError("duplicate pids")
        if self.election_timeout_ms <= 0:
            raise ConfigError("election_timeout_ms must be positive")

    @property
    def ping_period(self) -> float:
        if self.ping_period_ms is not None:
            return self.ping_period_ms
        return max(self.election_timeout_ms / 5.0, 1.0)

    @property
    def majority(self) -> int:
        return len(self.servers) // 2 + 1

    def leader_of(self, view: int) -> int:
        ordered = tuple(sorted(self.servers))
        return ordered[view % len(ordered)]


@dataclass
class VRStats:
    view_changes_started: int = 0
    views_established: int = 0


class VRReplica(Replica, Instrumented):
    """One VR server: view-change election + Sequence Paxos replication."""

    def _on_observability(self, registry: MetricsRegistry) -> None:
        self._sp.set_observability(registry)

    def __init__(self, config: VRConfig, storage: Optional[Storage] = None):
        self._config = config
        peers = tuple(p for p in config.servers if p != config.pid)
        self._peers = peers
        self._sp = SequencePaxos(
            SequencePaxosConfig(pid=config.pid, peers=peers),
            storage if storage is not None else InMemoryStorage(),
        )
        self._view = 0
        self._status = VRStatus.NORMAL
        self._svc_acks: Set[int] = set()
        self._dvc_acks: Set[int] = set()
        self._sent_dvc = False
        self._last_leader_contact = 0.0
        self._view_change_started = 0.0
        self._next_ping = 0.0
        self._outbox: List[Tuple[int, Any]] = []
        self._crashed = False
        self._started = False
        self.stats = VRStats()

    # ------------------------------------------------------------------
    # Replica interface: accessors
    # ------------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self._config.pid

    @property
    def members(self) -> Tuple[int, ...]:
        return self._config.servers

    @property
    def view(self) -> int:
        return self._view

    @property
    def status(self) -> VRStatus:
        return self._status

    @property
    def is_leader(self) -> bool:
        return (
            self._status is VRStatus.NORMAL
            and self._config.leader_of(self._view) == self.pid
            and self._sp.is_leader
        )

    @property
    def leader_pid(self) -> Optional[int]:
        if self._status is VRStatus.NORMAL:
            return self._config.leader_of(self._view)
        return None

    @property
    def sequence_paxos(self) -> SequencePaxos:
        return self._sp

    # ------------------------------------------------------------------
    # Replica interface: driving
    # ------------------------------------------------------------------

    def start(self, now_ms: float) -> None:
        if self._started:
            return
        self._started = True
        self._last_leader_contact = now_ms
        seed = self._config.initial_leader
        if seed is not None:
            # Pick the first view whose round-robin primary is the seed.
            ordered = tuple(sorted(self._config.servers))
            self._view = ordered.index(seed) + len(ordered)
            if seed == self.pid:
                self._sp.handle_leader(self._view_ballot(self._view))
                self.stats.views_established += 1
            else:
                self._sp.handle_leader(
                    Ballot(n=self._view, priority=0, pid=seed)
                )

    def tick(self, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        self._sp.tick(now_ms)
        if self.is_leader:
            if now_ms >= self._next_ping:
                self._next_ping = now_ms + self._config.ping_period
                for peer in self._peers:
                    self._send(peer, VRPing(self._view))
            self._drain_sp()
            return
        timeout = self._config.election_timeout_ms
        if self._status is VRStatus.NORMAL:
            if now_ms - self._last_leader_contact >= timeout:
                self._initiate_view_change(self._view + 1, now_ms)
        else:
            if now_ms - self._view_change_started >= timeout:
                # The view change stalled (e.g. its primary is unreachable
                # or cannot collect DoViewChanges): try the next view.
                self._initiate_view_change(self._view + 1, now_ms)
        self._drain_sp()

    def on_message(self, src: int, msg: Any, now_ms: float) -> None:
        if self._crashed or not self._started:
            return
        if isinstance(msg, StartViewChange):
            self._on_start_view_change(src, msg, now_ms)
        elif isinstance(msg, DoViewChange):
            self._on_do_view_change(src, msg, now_ms)
        elif isinstance(msg, StartView):
            self._on_start_view(src, msg, now_ms)
        elif isinstance(msg, VRPing):
            if self._status is VRStatus.NORMAL and msg.view == self._view:
                self._last_leader_contact = now_ms
        else:
            # Everything else is a Sequence Paxos message.
            self._sp.on_message(src, msg)
        self._drain_sp()

    def propose(self, entry: Any, now_ms: float) -> None:
        self._sp.propose(entry)
        self._drain_sp()

    def propose_batch(self, entries: Sequence[Any], now_ms: float) -> None:
        self._sp.propose_batch(entries)
        self._drain_sp()

    def take_outbox(self) -> List[Tuple[int, Any]]:
        self._drain_sp()
        out, self._outbox = self._outbox, []
        return out

    def take_decided(self) -> List[Tuple[int, Any]]:
        return self._sp.take_decided()

    # ------------------------------------------------------------------
    # Replica interface: failures
    # ------------------------------------------------------------------

    def crash(self) -> None:
        self._crashed = True

    def recover(self, now_ms: float) -> None:
        if not self._crashed:
            return
        self._crashed = False
        sp_storage = self._sp.storage
        self._sp = SequencePaxos(
            SequencePaxosConfig(pid=self.pid, peers=self._peers), sp_storage
        )
        self._sp.set_observability(self._obs)
        self._sp.fail_recover()
        self._view = 0
        self._status = VRStatus.NORMAL
        self._last_leader_contact = now_ms
        self._drain_sp()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _view_ballot(self, view: int) -> Ballot:
        return Ballot(n=view, priority=0, pid=self.pid)

    def _initiate_view_change(self, view: int, now_ms: float) -> None:
        self.stats.view_changes_started += 1
        self._enter_view_change(view, now_ms)
        for peer in self._peers:
            self._send(peer, StartViewChange(view))

    def _enter_view_change(self, view: int, now_ms: float) -> None:
        self._view = view
        self._status = VRStatus.VIEW_CHANGE
        self._svc_acks = {self.pid}
        self._dvc_acks = set()
        self._sent_dvc = False
        self._view_change_started = now_ms

    def _on_start_view_change(self, src: int, msg: StartViewChange,
                              now_ms: float) -> None:
        if msg.view > self._view:
            # Hearing of a higher view makes us join and re-broadcast it —
            # VR's gossip, the liveness hazard of paper section 2c.
            self._enter_view_change(msg.view, now_ms)
            for peer in self._peers:
                self._send(peer, StartViewChange(msg.view))
            self._svc_acks.add(src)
        elif msg.view == self._view and self._status is VRStatus.VIEW_CHANGE:
            self._svc_acks.add(src)
        else:
            return
        self._maybe_send_dvc(now_ms)

    def _maybe_send_dvc(self, now_ms: float) -> None:
        """EQC gate: DoViewChange only flows from replicas that saw a
        majority of StartViewChanges — i.e. quorum-connected ones."""
        if self._sent_dvc or self._status is not VRStatus.VIEW_CHANGE:
            return
        if len(self._svc_acks) < self._config.majority:
            return
        self._sent_dvc = True
        primary = self._config.leader_of(self._view)
        if primary == self.pid:
            self._dvc_acks.add(self.pid)
            self._maybe_become_primary(now_ms)
        else:
            self._send(primary, DoViewChange(self._view))

    def _on_do_view_change(self, src: int, msg: DoViewChange,
                           now_ms: float) -> None:
        if msg.view < self._view:
            return
        if msg.view > self._view:
            self._enter_view_change(msg.view, now_ms)
        if self._config.leader_of(self._view) != self.pid:
            return
        self._dvc_acks.add(src)
        self._maybe_become_primary(now_ms)

    def _maybe_become_primary(self, now_ms: float) -> None:
        if self._status is not VRStatus.VIEW_CHANGE:
            return
        if len(self._dvc_acks) < self._config.majority:
            return
        self._status = VRStatus.NORMAL
        self._last_leader_contact = now_ms
        self._next_ping = now_ms
        self.stats.views_established += 1
        if self._obs.enabled:
            self._obs.emit(BallotElected(pid=self.pid, leader=self.pid,
                                         ballot=self._view))
        self._sp.handle_leader(self._view_ballot(self._view))
        for peer in self._peers:
            self._send(peer, StartView(self._view))

    def _on_start_view(self, src: int, msg: StartView, now_ms: float) -> None:
        if msg.view < self._view:
            return
        self._view = msg.view
        self._status = VRStatus.NORMAL
        self._last_leader_contact = now_ms
        if self._obs.enabled:
            self._obs.emit(BallotElected(pid=self.pid, leader=src,
                                         ballot=msg.view))
        # Tell Sequence Paxos about the new leader so buffered proposals are
        # forwarded; log synchronization follows via its Prepare phase.
        self._sp.handle_leader(Ballot(n=msg.view, priority=0, pid=src))

    def _drain_sp(self) -> None:
        for dst, msg in self._sp.take_outbox():
            self._outbox.append((dst, msg))

    def _send(self, dst: int, msg: Any) -> None:
        self._outbox.append((dst, msg))


#: Wire-crossing VR messages, registered with stable binary tags in
#: `repro.runtime.codec` (drift guarded by the codec test suite).
WIRE_MESSAGES = (
    StartViewChange,
    DoViewChange,
    StartView,
    VRPing,
)
